"""Shared fixtures for the BIRCH reproduction test-suite."""

from __future__ import annotations

import signal
import sys
import threading

import numpy as np
import pytest

from repro.core.features import CF
from repro.pagestore.page import PageLayout
from repro.parallel.shm import active_segment_count, active_segment_names


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault-injection test matrix (CI sweeps several)",
    )
    parser.addoption(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for probability-mode process-chaos schedules "
        "(CI sweeps several)",
    )


#: Wall-clock ceiling applied to every ``chaos``-marked test when the
#: ``pytest-timeout`` plugin is not installed (CI installs it and uses
#: ``--timeout``; this SIGALRM fallback keeps a wedged pool from
#: hanging a local run instead of failing it).
_CHAOS_FALLBACK_TIMEOUT = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    use_alarm = (
        item.get_closest_marker("chaos") is not None
        and not item.config.pluginmanager.hasplugin("timeout")
        and sys.platform != "win32"
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _expired(signum, frame):
            pytest.fail(
                f"chaos test exceeded {_CHAOS_FALLBACK_TIMEOUT}s "
                f"(wedged pool?)", pytrace=False
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(_CHAOS_FALLBACK_TIMEOUT)
    try:
        yield
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def shm_leak_check(request: pytest.FixtureRequest):
    """No test may leak a parent-owned shared-memory segment.

    Applied automatically to the ``parallel`` and ``chaos`` suites
    (where segments are created); asserting *after* the test keeps the
    failure attributed to the leaking test rather than a later one.
    """
    if (
        request.node.get_closest_marker("parallel") is None
        and request.node.get_closest_marker("chaos") is None
    ):
        yield
        return
    before = active_segment_count()
    yield
    after = active_segment_count()
    assert after <= before, (
        f"test leaked {after - before} shared-memory segment(s): "
        f"{active_segment_names()}"
    )


@pytest.fixture
def fault_seed(request: pytest.FixtureRequest) -> int:
    """Seed for fault-injection schedules; CI runs a matrix of values."""
    return request.config.getoption("--fault-seed")


@pytest.fixture
def chaos_seed(request: pytest.FixtureRequest) -> int:
    """Seed for process-chaos schedules; CI runs a matrix of values."""
    return request.config.getoption("--chaos-seed")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that sample data."""
    return np.random.default_rng(12345)


@pytest.fixture
def layout_2d() -> PageLayout:
    """Default 1 KB page layout for 2-d data (the paper's setting)."""
    return PageLayout(page_size=1024, dimensions=2)


@pytest.fixture
def small_layout_2d() -> PageLayout:
    """A tiny page so trees split early in tests."""
    return PageLayout(page_size=128, dimensions=2)


@pytest.fixture
def blob_points(rng: np.random.Generator) -> np.ndarray:
    """Three well-separated Gaussian blobs in 2-d, 150 points."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]])
    return np.concatenate(
        [rng.normal(c, 0.5, size=(50, 2)) for c in centers]
    )


@pytest.fixture
def blob_labels() -> np.ndarray:
    """Ground-truth labels for ``blob_points``."""
    return np.repeat(np.arange(3), 50)


def make_cf(points: np.ndarray) -> CF:
    """Helper: exact CF of a point array."""
    return CF.from_points(points)
