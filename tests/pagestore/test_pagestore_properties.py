"""Property-based tests for the pagestore substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pagestore.disk import DiskFullError, DiskStore
from repro.pagestore.memory import MemoryBudget
from repro.pagestore.page import PageLayout


class TestLayoutProperties:
    @given(
        page_size=st.integers(256, 16384),
        dimensions=st.integers(1, 24),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacities_consistent(self, page_size, dimensions):
        if page_size < PageLayout.min_page_size(dimensions):
            with pytest.raises(ValueError):
                PageLayout(page_size=page_size, dimensions=dimensions)
            return
        layout = PageLayout(page_size=page_size, dimensions=dimensions)
        # Entries fit within the page.
        assert layout.branching_factor * layout.nonleaf_entry_bytes <= page_size
        assert layout.leaf_capacity * layout.leaf_entry_bytes <= page_size
        # At least a valid B+-tree-like node.
        assert layout.branching_factor >= 2
        assert layout.leaf_capacity >= 2

    @given(dimensions=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_min_page_size_tight(self, dimensions):
        minimum = PageLayout.min_page_size(dimensions)
        PageLayout(page_size=minimum, dimensions=dimensions)  # must not raise


class TestBudgetProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 5)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_in_use_never_negative_and_peak_monotone(self, ops):
        layout = PageLayout(page_size=1024, dimensions=2)
        budget = MemoryBudget(1024 * 1024, layout)
        peak_seen = 0
        for is_alloc, pages in ops:
            if is_alloc:
                budget.allocate(pages)
            else:
                pages = min(pages, budget.pages_in_use)
                if pages:
                    budget.release(pages)
            assert budget.pages_in_use >= 0
            assert budget.peak_pages >= peak_seen
            peak_seen = budget.peak_pages
            assert budget.peak_pages >= budget.pages_in_use


class TestDiskProperties:
    @given(
        writes=st.lists(st.integers(0, 100), min_size=0, max_size=50),
        capacity_records=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_is_exact(self, writes, capacity_records):
        disk: DiskStore[int] = DiskStore(
            capacity_bytes=capacity_records * 32, record_bytes=32
        )
        stored = 0
        for value in writes:
            try:
                disk.write(value)
                stored += 1
            except DiskFullError:
                assert stored == capacity_records
                break
        assert len(disk) == stored
        assert disk.bytes_used == stored * 32
        # Drain returns exactly what was stored, in order.
        assert disk.drain() == list(writes[:stored])
