"""Tests for the simulated outlier disk."""

import pytest

from repro.pagestore.disk import DiskFullError, DiskStore
from repro.pagestore.iostats import IOStats


@pytest.fixture
def disk() -> DiskStore[str]:
    return DiskStore(capacity_bytes=320, record_bytes=32, page_size=64)


class TestCapacity:
    def test_fits_ten_records(self, disk: DiskStore[str]):
        for i in range(10):
            disk.write(f"r{i}")
        assert len(disk) == 10
        assert disk.is_full
        assert disk.bytes_free == 0

    def test_write_beyond_capacity_raises(self, disk: DiskStore[str]):
        for i in range(10):
            disk.write(f"r{i}")
        with pytest.raises(DiskFullError):
            disk.write("overflow")

    def test_write_all_is_atomic(self, disk: DiskStore[str]):
        disk.write_all(["a"] * 8)
        with pytest.raises(DiskFullError):
            disk.write_all(["b"] * 3)
        assert len(disk) == 8  # nothing from the failed batch landed

    def test_can_fit(self, disk: DiskStore[str]):
        assert disk.can_fit(10)
        assert not disk.can_fit(11)

    def test_zero_capacity_accepts_nothing(self):
        empty: DiskStore[str] = DiskStore(capacity_bytes=0, record_bytes=32)
        assert empty.is_full
        with pytest.raises(DiskFullError):
            empty.write("x")


class TestDrain:
    def test_drain_returns_in_order_and_empties(self, disk: DiskStore[str]):
        records = [f"r{i}" for i in range(5)]
        disk.write_all(records)
        assert disk.drain() == records
        assert len(disk) == 0
        assert disk.drain() == []

    def test_peek_does_not_consume(self, disk: DiskStore[str]):
        disk.write("a")
        assert list(disk.peek()) == ["a"]
        assert len(disk) == 1

    def test_clear_discards_silently(self, disk: DiskStore[str]):
        disk.write_all(["a", "b"])
        reads_before = disk.stats.page_reads
        disk.clear()
        assert len(disk) == 0
        assert disk.stats.page_reads == reads_before


class TestIOAccounting:
    def test_writes_charge_pages(self):
        stats = IOStats()
        disk: DiskStore[str] = DiskStore(
            capacity_bytes=640, record_bytes=32, page_size=64, stats=stats
        )
        disk.write("a")  # 32 bytes -> 1 page
        assert stats.page_writes == 1
        assert stats.bytes_written == 32
        disk.write_all(["b"] * 4)  # 128 bytes -> 2 pages
        assert stats.page_writes == 3
        assert stats.bytes_written == 160

    def test_drain_charges_reads(self):
        stats = IOStats()
        disk: DiskStore[str] = DiskStore(
            capacity_bytes=640, record_bytes=32, page_size=64, stats=stats
        )
        disk.write_all(["a"] * 6)
        disk.drain()
        assert stats.page_reads == 3  # 192 bytes over 64-byte pages
        assert stats.bytes_read == 192


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskStore(capacity_bytes=-1, record_bytes=32)
        with pytest.raises(ValueError):
            DiskStore(capacity_bytes=10, record_bytes=0)
        with pytest.raises(ValueError):
            DiskStore(capacity_bytes=10, record_bytes=8, page_size=0)


class TestPeekSnapshot:
    def test_peek_is_a_snapshot_iterator(self, disk: DiskStore[str]):
        disk.write_all(["a", "b"])
        view = disk.peek()
        disk.write("c")  # mutation after the snapshot was taken
        assert list(view) == ["a", "b"]
        assert list(disk.peek()) == ["a", "b", "c"]

    def test_peek_survives_drain(self, disk: DiskStore[str]):
        disk.write_all(["a", "b"])
        view = disk.peek()
        disk.drain()
        assert list(view) == ["a", "b"]

    def test_peek_charges_no_io(self, disk: DiskStore[str]):
        disk.write("a")
        reads_before = disk.stats.page_reads
        list(disk.peek())
        assert disk.stats.page_reads == reads_before


class TestAdopt:
    def test_adopt_replaces_contents_without_io(self):
        stats = IOStats()
        disk: DiskStore[str] = DiskStore(
            capacity_bytes=640, record_bytes=32, page_size=64, stats=stats
        )
        disk.write("old")
        writes_before = stats.page_writes
        disk.adopt(["a", "b", "c"])
        assert list(disk.peek()) == ["a", "b", "c"]
        assert stats.page_writes == writes_before

    def test_adopt_beyond_capacity_rejected(self):
        disk: DiskStore[str] = DiskStore(capacity_bytes=64, record_bytes=32)
        with pytest.raises(DiskFullError):
            disk.adopt(["a", "b", "c"])
        assert len(disk) == 0
