"""Tests for the I/O accounting ledger."""

from repro.pagestore.iostats import IOStats


class TestCounters:
    def test_initial_state_is_zero(self):
        stats = IOStats()
        assert all(v == 0 for v in stats.summary().values())

    def test_record_read_write(self):
        stats = IOStats()
        stats.record_read(2048, pages=2)
        stats.record_write(1024, pages=1)
        assert stats.page_reads == 2
        assert stats.page_writes == 1
        assert stats.bytes_read == 2048
        assert stats.bytes_written == 1024

    def test_record_scan_counts_points(self):
        stats = IOStats()
        stats.record_scan(100)
        stats.record_scan(50)
        assert stats.data_scans == 2
        assert stats.points_scanned == 150

    def test_structural_events(self):
        stats = IOStats()
        stats.record_rebuild()
        stats.record_split()
        stats.record_split()
        stats.record_merge()
        assert stats.tree_rebuilds == 1
        assert stats.splits == 2
        assert stats.merges == 1

    def test_reset_zeroes_everything(self):
        stats = IOStats()
        stats.record_read(10)
        stats.record_scan(5)
        stats.record_rebuild()
        stats.reset()
        assert all(v == 0 for v in stats.summary().values())
        assert stats.points_scanned == 0

    def test_merge_counts_adds_worker_ledgers(self):
        parent = IOStats()
        parent.record_read(1024, pages=1)
        parent.record_rebuild()
        worker_a, worker_b = IOStats(), IOStats()
        worker_a.record_read(2048, pages=2)
        worker_a.record_write(1024, pages=1)
        worker_a.record_split()
        worker_b.record_scan(50)
        worker_b.record_merge()
        parent.merge_counts(worker_a.state_dict())
        parent.merge_counts(worker_b.state_dict())
        assert parent.page_reads == 3
        assert parent.bytes_read == 1024 + 2048
        assert parent.page_writes == 1
        assert parent.bytes_written == 1024
        assert parent.data_scans == 1
        assert parent.points_scanned == 50
        assert parent.tree_rebuilds == 1
        assert parent.splits == 1
        assert parent.merges == 1

    def test_merge_counts_is_order_independent(self):
        states = []
        for pages in (1, 2, 3):
            worker = IOStats()
            worker.record_read(pages * 512, pages=pages)
            worker.record_scan(pages)
            states.append(worker.state_dict())
        forward, backward = IOStats(), IOStats()
        for state in states:
            forward.merge_counts(state)
        for state in reversed(states):
            backward.merge_counts(state)
        assert forward.state_dict() == backward.state_dict()

    def test_merge_counts_tolerates_missing_scan_points(self):
        # Pre-PR-3 worker payloads had no scan_points key.
        parent = IOStats()
        state = IOStats().state_dict()
        state.pop("scan_points")
        parent.merge_counts(state)
        assert parent.points_scanned == 0

    def test_state_dict_round_trip(self):
        stats = IOStats()
        stats.record_read(4096, pages=4)
        stats.record_scan(123)
        restored = IOStats()
        restored.load_state(stats.state_dict())
        assert restored.state_dict() == stats.state_dict()
        assert restored.points_scanned == 123

    def test_summary_keys_are_stable(self):
        expected = {
            "page_reads",
            "page_writes",
            "bytes_read",
            "bytes_written",
            "data_scans",
            "tree_rebuilds",
            "splits",
            "merges",
        }
        assert set(IOStats().summary().keys()) == expected
