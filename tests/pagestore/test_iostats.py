"""Tests for the I/O accounting ledger."""

from repro.pagestore.iostats import IOStats


class TestCounters:
    def test_initial_state_is_zero(self):
        stats = IOStats()
        assert all(v == 0 for v in stats.summary().values())

    def test_record_read_write(self):
        stats = IOStats()
        stats.record_read(2048, pages=2)
        stats.record_write(1024, pages=1)
        assert stats.page_reads == 2
        assert stats.page_writes == 1
        assert stats.bytes_read == 2048
        assert stats.bytes_written == 1024

    def test_record_scan_counts_points(self):
        stats = IOStats()
        stats.record_scan(100)
        stats.record_scan(50)
        assert stats.data_scans == 2
        assert stats.points_scanned == 150

    def test_structural_events(self):
        stats = IOStats()
        stats.record_rebuild()
        stats.record_split()
        stats.record_split()
        stats.record_merge()
        assert stats.tree_rebuilds == 1
        assert stats.splits == 2
        assert stats.merges == 1

    def test_reset_zeroes_everything(self):
        stats = IOStats()
        stats.record_read(10)
        stats.record_scan(5)
        stats.record_rebuild()
        stats.reset()
        assert all(v == 0 for v in stats.summary().values())
        assert stats.points_scanned == 0

    def test_summary_keys_are_stable(self):
        expected = {
            "page_reads",
            "page_writes",
            "bytes_read",
            "bytes_written",
            "data_scans",
            "tree_rebuilds",
            "splits",
            "merges",
        }
        assert set(IOStats().summary().keys()) == expected
