"""Tests for the page layout arithmetic."""

import pytest

from repro.pagestore.page import PageLayout


class TestCapacities:
    def test_paper_default_2d(self):
        layout = PageLayout(page_size=1024, dimensions=2)
        # One CF entry: 8 * (1 + 2 + 1) = 32 bytes.
        assert layout.cf_entry_bytes == 32
        assert layout.nonleaf_entry_bytes == 40
        assert layout.leaf_entry_bytes == 32
        # (1024 - 16) // 40 = 25 children; (1024 - 32) // 32 = 31 entries.
        assert layout.branching_factor == 25
        assert layout.leaf_capacity == 31

    def test_capacity_scales_with_page_size(self):
        small = PageLayout(page_size=512, dimensions=2)
        large = PageLayout(page_size=4096, dimensions=2)
        assert large.branching_factor > 2 * small.branching_factor
        assert large.leaf_capacity > 2 * small.leaf_capacity

    def test_capacity_shrinks_with_dimension(self):
        low = PageLayout(page_size=1024, dimensions=2)
        high = PageLayout(page_size=1024, dimensions=32)
        assert high.branching_factor < low.branching_factor
        assert high.leaf_capacity < low.leaf_capacity

    def test_high_dimensional_layout_still_valid(self):
        layout = PageLayout(page_size=4096, dimensions=64)
        assert layout.branching_factor >= 2
        assert layout.leaf_capacity >= 2


class TestValidation:
    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=0, dimensions=2)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=1024, dimensions=0)

    def test_rejects_page_too_small_for_two_entries(self):
        with pytest.raises(ValueError, match="cannot hold two entries"):
            PageLayout(page_size=64, dimensions=8)

    def test_min_page_size_is_admissible(self):
        for d in (1, 2, 8, 64):
            layout = PageLayout(page_size=PageLayout.min_page_size(d), dimensions=d)
            assert layout.branching_factor >= 2
            assert layout.leaf_capacity >= 2

    def test_below_min_page_size_is_rejected(self):
        for d in (1, 2, 8):
            too_small = PageLayout.min_page_size(d) - 24
            with pytest.raises(ValueError):
                PageLayout(page_size=too_small, dimensions=d)


class TestMaxPages:
    def test_max_pages(self):
        layout = PageLayout(page_size=1024, dimensions=2)
        assert layout.max_pages(80 * 1024) == 80
        assert layout.max_pages(1023) == 0
        assert layout.max_pages(0) == 0

    def test_max_pages_negative_rejected(self):
        layout = PageLayout(page_size=1024, dimensions=2)
        with pytest.raises(ValueError):
            layout.max_pages(-1)

    def test_outlier_record_is_one_cf(self):
        layout = PageLayout(page_size=1024, dimensions=2)
        assert layout.outlier_record_bytes() == layout.cf_entry_bytes
