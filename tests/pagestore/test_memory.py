"""Tests for the byte-accounted memory budget."""

import pytest

from repro.pagestore.memory import MemoryBudget, MemoryExhaustedError
from repro.pagestore.page import PageLayout


@pytest.fixture
def budget(layout_2d: PageLayout) -> MemoryBudget:
    return MemoryBudget(limit_bytes=8 * 1024, layout=layout_2d)


class TestAccounting:
    def test_capacity_from_limit(self, budget: MemoryBudget):
        assert budget.capacity_pages == 8
        assert budget.page_size == 1024

    def test_allocate_and_release(self, budget: MemoryBudget):
        budget.allocate(3)
        assert budget.pages_in_use == 3
        assert budget.bytes_in_use == 3 * 1024
        budget.release(2)
        assert budget.pages_in_use == 1

    def test_peak_tracking(self, budget: MemoryBudget):
        budget.allocate(5)
        budget.release(4)
        budget.allocate(2)
        assert budget.peak_pages == 5

    def test_over_budget_flag(self, budget: MemoryBudget):
        budget.allocate(8)
        assert not budget.over_budget
        budget.allocate(1)
        assert budget.over_budget

    def test_would_exceed(self, budget: MemoryBudget):
        budget.allocate(7)
        assert not budget.would_exceed(1)
        assert budget.would_exceed(2)

    def test_reset(self, budget: MemoryBudget):
        budget.allocate(4)
        budget.reset()
        assert budget.pages_in_use == 0
        assert budget.peak_pages == 0


class TestLimits:
    def test_hard_cap_raises_beyond_slack(self, budget: MemoryBudget):
        # Budget 8 pages + insertion slack; far beyond must raise.
        with pytest.raises(MemoryExhaustedError):
            budget.allocate(8 + 64)

    def test_transient_pages_extend_cap(self, layout_2d: PageLayout):
        tight = MemoryBudget(2 * 1024, layout_2d, transient_pages=0)
        roomy = MemoryBudget(2 * 1024, layout_2d, transient_pages=100)
        with pytest.raises(MemoryExhaustedError):
            tight.allocate(80)
        roomy.allocate(80)  # within transient allowance
        assert roomy.pages_in_use == 80

    def test_release_more_than_held_rejected(self, budget: MemoryBudget):
        budget.allocate(2)
        with pytest.raises(ValueError):
            budget.release(3)

    def test_negative_amounts_rejected(self, budget: MemoryBudget):
        with pytest.raises(ValueError):
            budget.allocate(-1)
        with pytest.raises(ValueError):
            budget.release(-1)

    def test_nonpositive_limit_rejected(self, layout_2d: PageLayout):
        with pytest.raises(ValueError):
            MemoryBudget(0, layout_2d)
