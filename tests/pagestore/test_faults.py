"""Fault injector schedules, the faulty disk wrapper and retry_io."""

from __future__ import annotations

import pytest

from repro.errors import (
    IOFaultError,
    PermanentIOError,
    ReproError,
    TransientIOError,
)
from repro.pagestore.faults import FaultInjector, FaultyDiskStore, retry_io


class TestFaultInjectorSchedules:
    def test_fail_every_k_fires_on_multiples(self) -> None:
        inj = FaultInjector(fail_every=3)
        fired = []
        for i in range(1, 10):
            try:
                inj.check("write")
                fired.append(False)
            except TransientIOError:
                fired.append(True)
        assert fired == [False, False, True] * 3

    def test_probability_stream_is_seed_deterministic(self) -> None:
        def pattern(seed: int) -> list[bool]:
            inj = FaultInjector(fail_probability=0.3, seed=seed)
            out = []
            for _ in range(50):
                try:
                    inj.check("write")
                    out.append(False)
                except TransientIOError:
                    out.append(True)
            return out

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7))

    def test_byte_offset_trigger_fires_once(self) -> None:
        inj = FaultInjector(fail_at_byte=100)
        inj.check("write", nbytes=64, offset=0)  # [0, 64): no
        with pytest.raises(TransientIOError):
            inj.check("write", nbytes=64, offset=64)  # [64, 128): covers 100
        # disarmed: the same window passes now
        inj.check("write", nbytes=64, offset=64)

    def test_permanent_kind_raises_permanent_error(self) -> None:
        inj = FaultInjector(kind="permanent", fail_every=1)
        with pytest.raises(PermanentIOError):
            inj.check("write")

    def test_exceptions_are_oserrors_and_repro_errors(self) -> None:
        inj = FaultInjector(fail_every=1)
        with pytest.raises(OSError):
            inj.check("write")
        inj.reset()
        with pytest.raises(ReproError):
            inj.check("write")
        inj.reset()
        with pytest.raises(IOFaultError):
            inj.check("write")

    def test_non_matching_ops_do_not_advance_schedule(self) -> None:
        inj = FaultInjector(fail_every=2, ops=("write",))
        inj.check("read")
        inj.check("read")
        assert inj.op_count == 0
        inj.check("write")
        with pytest.raises(TransientIOError):
            inj.check("write")

    def test_max_faults_caps_injection(self) -> None:
        inj = FaultInjector(fail_every=1, max_faults=2)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                inj.check("write")
        inj.check("write")  # cap reached: passes
        assert inj.faults_injected == 2

    def test_reset_replays_the_same_schedule(self) -> None:
        inj = FaultInjector(fail_probability=0.5, seed=3)

        def run() -> list[bool]:
            out = []
            for _ in range(20):
                try:
                    inj.check("write")
                    out.append(False)
                except TransientIOError:
                    out.append(True)
            return out

        first = run()
        inj.reset()
        assert run() == first

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="kind"):
            FaultInjector(kind="flaky")
        with pytest.raises(ValueError, match="fail_every"):
            FaultInjector(fail_every=0)
        with pytest.raises(ValueError, match="fail_probability"):
            FaultInjector(fail_probability=1.5)
        with pytest.raises(ValueError, match="fail_at_byte"):
            FaultInjector(fail_at_byte=-1)


class TestFaultyDiskStore:
    def _store(self, injector: FaultInjector) -> FaultyDiskStore:
        return FaultyDiskStore(
            capacity_bytes=4096, record_bytes=40, injector=injector
        )

    def test_faulted_write_leaves_store_unchanged(self) -> None:
        store = self._store(FaultInjector(fail_every=2))
        store.write("a")
        with pytest.raises(TransientIOError):
            store.write("b")
        assert list(store.peek()) == ["a"]

    def test_faulted_drain_leaves_records_in_place(self) -> None:
        store = self._store(FaultInjector(fail_every=1, ops=("read",)))
        store.write("a")
        store.write("b")
        with pytest.raises(TransientIOError):
            store.drain()
        assert list(store.peek()) == ["a", "b"]

    def test_no_injector_behaves_like_plain_store(self) -> None:
        store = FaultyDiskStore(capacity_bytes=4096, record_bytes=40)
        store.write("a")
        assert store.drain() == ["a"]


class TestRetryIO:
    def test_transient_faults_heal_within_budget(self) -> None:
        inj = FaultInjector(fail_every=2)
        log: list[float] = []

        def op() -> str:
            inj.check("write")
            return "ok"

        # ops 1 (ok) — then op 2 faults, retry hits op 3 (ok).
        assert retry_io(op, attempts=2, base_delay=0.5, sleep=log.append) == "ok"
        assert retry_io(op, attempts=2, base_delay=0.5, sleep=log.append) == "ok"
        assert log == [0.5]

    def test_backoff_doubles(self) -> None:
        calls = {"n": 0}
        log: list[float] = []

        def op() -> None:
            calls["n"] += 1
            if calls["n"] < 4:
                raise TransientIOError("flaky")

        retry_io(op, attempts=4, base_delay=0.1, sleep=log.append)
        assert log == pytest.approx([0.1, 0.2, 0.4])

    def test_exhausted_retries_propagate_last_transient(self) -> None:
        def op() -> None:
            raise TransientIOError("always")

        with pytest.raises(TransientIOError):
            retry_io(op, attempts=3, base_delay=0.0, sleep=lambda _: None)

    def test_permanent_fault_is_not_retried(self) -> None:
        calls = {"n": 0}

        def op() -> None:
            calls["n"] += 1
            raise PermanentIOError("dead")

        with pytest.raises(PermanentIOError):
            retry_io(op, attempts=5, base_delay=0.0, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_observer_sees_each_retry(self) -> None:
        calls = {"n": 0}
        seen: list[int] = []

        def op() -> None:
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flaky")

        retry_io(
            op,
            attempts=3,
            base_delay=0.0,
            sleep=lambda _: None,
            on_retry=lambda i, exc: seen.append(i),
        )
        assert seen == [0, 1]

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="attempts"):
            retry_io(lambda: None, attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            retry_io(lambda: None, base_delay=-1.0)
