"""Tests for the PAM k-medoids baseline."""

import numpy as np
import pytest

from repro.baselines.kmedoids import KMedoids


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [12.0, 0.0]])
    return np.concatenate([rng.normal(c, 0.4, size=(25, 2)) for c in centers]), centers


class TestClustering:
    def test_recovers_blobs(self, blobs):
        points, centers = blobs
        result = KMedoids(n_clusters=2).fit(points)
        for c in centers:
            assert np.linalg.norm(result.medoids - c, axis=1).min() < 1.0

    def test_cost_matches_labels(self, blobs):
        points, _ = blobs
        result = KMedoids(n_clusters=2).fit(points)
        manual = sum(
            float(np.linalg.norm(points[i] - result.medoids[result.labels[i]]))
            for i in range(points.shape[0])
        )
        assert result.cost == pytest.approx(manual, rel=1e-9)

    def test_deterministic(self, blobs):
        points, _ = blobs
        a = KMedoids(n_clusters=2).fit(points)
        b = KMedoids(n_clusters=2).fit(points)
        assert np.array_equal(a.medoid_indices, b.medoid_indices)

    def test_medoids_are_points(self, blobs):
        points, _ = blobs
        result = KMedoids(n_clusters=2).fit(points)
        for idx, m in zip(result.medoid_indices, result.medoids):
            assert np.allclose(points[idx], m)

    def test_pam_at_least_as_good_as_clarans_local_minimum(self, blobs):
        """PAM's exhaustive swaps reach a cost no worse than a short
        randomized CLARANS run on the same data."""
        from repro.baselines.clarans import CLARANS

        points, _ = blobs
        pam = KMedoids(n_clusters=2).fit(points)
        clarans = CLARANS(n_clusters=2, numlocal=1, maxneighbor=20, seed=0).fit(points)
        assert pam.cost <= clarans.cost + 1e-9


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KMedoids(n_clusters=0)
        with pytest.raises(ValueError):
            KMedoids(n_clusters=2, max_iter=0)

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            KMedoids(n_clusters=5).fit(rng.normal(size=(3, 2)))

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(4, 2))
        result = KMedoids(n_clusters=4).fit(points)
        assert result.cost == pytest.approx(0.0)
