"""Tests for the CLARA baseline."""

import numpy as np
import pytest

from repro.baselines.clara import CLARA
from repro.baselines.kmedoids import KMedoids


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [15.0, 0.0], [0.0, 15.0]])
    return (
        np.concatenate([rng.normal(c, 0.5, size=(60, 2)) for c in centers]),
        centers,
    )


class TestClustering:
    def test_recovers_blobs(self, blobs):
        points, centers = blobs
        result = CLARA(n_clusters=3, n_samples=5, seed=0).fit(points)
        for c in centers:
            assert np.linalg.norm(result.medoids - c, axis=1).min() < 1.5

    def test_labels_cover_dataset(self, blobs):
        points, _ = blobs
        result = CLARA(n_clusters=3, seed=0).fit(points)
        assert result.labels.shape == (180,)
        assert set(result.labels.tolist()) == {0, 1, 2}

    def test_cost_is_full_dataset_cost(self, blobs):
        points, _ = blobs
        result = CLARA(n_clusters=3, seed=0).fit(points)
        manual = sum(
            float(np.linalg.norm(points[i] - result.medoids[result.labels[i]]))
            for i in range(points.shape[0])
        )
        assert result.cost == pytest.approx(manual, rel=1e-9)

    def test_medoids_come_from_dataset(self, blobs):
        points, _ = blobs
        result = CLARA(n_clusters=3, seed=0).fit(points)
        for idx, medoid in zip(result.medoid_indices, result.medoids):
            assert np.allclose(points[idx], medoid)

    def test_more_samples_never_much_worse(self, blobs):
        points, _ = blobs
        one = CLARA(n_clusters=3, n_samples=1, seed=7).fit(points)
        five = CLARA(n_clusters=3, n_samples=5, seed=7).fit(points)
        assert five.cost <= one.cost + 1e-9  # same first sample, keeps best
        assert five.samples_drawn == 5

    def test_close_to_full_pam_on_small_data(self, blobs):
        """With sample_size == N, CLARA degenerates to PAM exactly."""
        points, _ = blobs
        clara = CLARA(
            n_clusters=3, n_samples=1, sample_size=points.shape[0], seed=0
        ).fit(points)
        pam = KMedoids(n_clusters=3).fit(points)
        assert clara.cost == pytest.approx(pam.cost, rel=1e-9)

    def test_deterministic_given_seed(self, blobs):
        points, _ = blobs
        a = CLARA(n_clusters=3, seed=5).fit(points)
        b = CLARA(n_clusters=3, seed=5).fit(points)
        assert np.array_equal(a.medoid_indices, b.medoid_indices)


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CLARA(n_clusters=0)
        with pytest.raises(ValueError):
            CLARA(n_clusters=3, n_samples=0)
        with pytest.raises(ValueError):
            CLARA(n_clusters=5, sample_size=3)

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            CLARA(n_clusters=10).fit(rng.normal(size=(4, 2)))

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            CLARA(n_clusters=2).fit(rng.normal(size=8))
