"""Tests for agglomerative clustering on raw points."""

import numpy as np
import pytest

from repro.baselines.hierarchical import agglomerative_points
from repro.core.distances import Metric
from repro.core.features import CF
from repro.core.global_clustering import agglomerative_cf


class TestPointClustering:
    def test_recovers_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        points = np.concatenate([rng.normal(c, 0.3, size=(15, 2)) for c in centers])
        result = agglomerative_points(points, n_clusters=3)
        truth = np.repeat(np.arange(3), 15)
        for label in range(3):
            assert len(set(result.labels[truth == label])) == 1

    def test_equivalent_to_singleton_cf_clustering(self, rng):
        points = rng.normal(size=(20, 2)) * 3
        via_points = agglomerative_points(points, n_clusters=4)
        via_cfs = agglomerative_cf(
            [CF.from_point(p) for p in points], n_clusters=4
        )
        assert np.array_equal(via_points.labels, via_cfs.labels)

    @pytest.mark.parametrize("metric", list(Metric))
    def test_all_metrics(self, metric, rng):
        points = np.concatenate(
            [rng.normal(0, 0.3, size=(10, 2)), rng.normal(20, 0.3, size=(10, 2))]
        )
        result = agglomerative_points(points, n_clusters=2, metric=metric)
        truth = np.repeat(np.arange(2), 10)
        for label in range(2):
            assert len(set(result.labels[truth == label])) == 1

    def test_conservation(self, rng):
        points = rng.normal(size=(25, 2))
        result = agglomerative_points(points, n_clusters=5)
        assert sum(cf.n for cf in result.clusters) == 25

    def test_non_2d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            agglomerative_points(rng.normal(size=9), n_clusters=2)
