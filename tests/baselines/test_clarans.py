"""Tests for the CLARANS baseline."""

import numpy as np
import pytest

from repro.baselines.clarans import CLARANS, default_maxneighbor


@pytest.fixture
def four_blobs(rng):
    centers = np.array([[0.0, 0.0], [15.0, 0.0], [0.0, 15.0], [15.0, 15.0]])
    return np.concatenate([rng.normal(c, 0.5, size=(40, 2)) for c in centers]), centers


class TestSearch:
    def test_recovers_separated_blobs(self, four_blobs):
        points, centers = four_blobs
        result = CLARANS(n_clusters=4, numlocal=2, maxneighbor=150, seed=3).fit(points)
        assert result.medoids.shape == (4, 2)
        for c in centers:
            nearest = np.linalg.norm(result.medoids - c, axis=1).min()
            assert nearest < 1.5

    def test_labels_partition_everything(self, four_blobs):
        points, _ = four_blobs
        result = CLARANS(n_clusters=4, maxneighbor=100, seed=0).fit(points)
        assert result.labels.shape == (160,)
        assert set(result.labels.tolist()) <= {0, 1, 2, 3}

    def test_cost_matches_labelling(self, four_blobs):
        points, _ = four_blobs
        result = CLARANS(n_clusters=4, maxneighbor=100, seed=0).fit(points)
        manual = 0.0
        for i, label in enumerate(result.labels):
            manual += np.linalg.norm(points[i] - result.medoids[label])
        assert result.cost == pytest.approx(manual, rel=1e-9)

    def test_medoids_are_dataset_points(self, four_blobs):
        points, _ = four_blobs
        result = CLARANS(n_clusters=4, maxneighbor=100, seed=0).fit(points)
        for idx, medoid in zip(result.medoid_indices, result.medoids):
            assert np.allclose(points[idx], medoid)

    def test_deterministic_given_seed(self, four_blobs):
        points, _ = four_blobs
        a = CLARANS(n_clusters=4, maxneighbor=60, seed=5).fit(points)
        b = CLARANS(n_clusters=4, maxneighbor=60, seed=5).fit(points)
        assert np.array_equal(a.medoid_indices, b.medoid_indices)
        assert a.cost == b.cost

    def test_more_restarts_never_worse(self, four_blobs):
        points, _ = four_blobs
        one = CLARANS(n_clusters=4, numlocal=1, maxneighbor=40, seed=9).fit(points)
        four = CLARANS(n_clusters=4, numlocal=4, maxneighbor=40, seed=9).fit(points)
        # numlocal=4 explores a superset of restarts with the same RNG
        # stream start, so its best cost is at most slightly worse.
        assert four.cost <= one.cost * 1.25

    def test_swaps_reduce_cost_vs_no_search(self, four_blobs):
        points, _ = four_blobs
        searched = CLARANS(n_clusters=4, numlocal=2, maxneighbor=120, seed=1).fit(points)
        # "No search": maxneighbor=1 gives up almost immediately.
        lazy = CLARANS(n_clusters=4, numlocal=1, maxneighbor=1, seed=1).fit(points)
        assert searched.cost <= lazy.cost


class TestParameters:
    def test_default_maxneighbor_rule(self):
        # max(250, 1.25% of K(N-K))
        assert default_maxneighbor(1000, 10) == max(250, int(0.0125 * 10 * 990))
        assert default_maxneighbor(100, 2) == 250  # floor applies

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CLARANS(n_clusters=0)
        with pytest.raises(ValueError):
            CLARANS(n_clusters=2, numlocal=0)
        with pytest.raises(ValueError):
            CLARANS(n_clusters=2, maxneighbor=0)

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            CLARANS(n_clusters=10).fit(rng.normal(size=(5, 2)))

    def test_non_2d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            CLARANS(n_clusters=2).fit(rng.normal(size=10))

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(5, 2))
        result = CLARANS(n_clusters=5, maxneighbor=10, seed=0).fit(points)
        assert sorted(result.medoid_indices.tolist()) == [0, 1, 2, 3, 4]
        assert result.cost == pytest.approx(0.0)


class TestEffortCounters:
    def test_examined_counts_accumulate(self, four_blobs):
        points, _ = four_blobs
        result = CLARANS(n_clusters=4, numlocal=2, maxneighbor=50, seed=2).fit(points)
        assert result.neighbours_examined >= 2 * 50
        assert result.restarts == 2


class TestSwapDeltaProperty:
    def test_delta_matches_recomputed_cost(self, four_blobs, rng):
        """The O(N) swap delta equals the brute-force cost difference."""
        from repro.baselines.clarans import _SwapState

        points, _ = four_blobs
        medoids = rng.choice(points.shape[0], size=4, replace=False)
        state = _SwapState(points, medoids)
        for _ in range(20):
            out_pos = int(rng.integers(4))
            candidate = int(rng.integers(points.shape[0]))
            if state.is_medoid(candidate):
                continue
            delta = state.swap_delta(out_pos, candidate)
            trial = state.medoid_indices.copy()
            trial[out_pos] = candidate
            brute = _SwapState(points, trial).cost - state.cost
            assert delta == pytest.approx(brute, abs=1e-8)
