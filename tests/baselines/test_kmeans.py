"""Tests for the Lloyd k-means baseline."""

import numpy as np
import pytest

from repro.baselines.kmeans import KMeans


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0]])
    return np.concatenate([rng.normal(c, 0.6, size=(70, 2)) for c in centers]), centers


class TestClustering:
    def test_recovers_blobs(self, blobs):
        points, centers = blobs
        result = KMeans(n_clusters=3, seed=0).fit(points)
        for c in centers:
            assert np.linalg.norm(result.centroids - c, axis=1).min() < 0.5

    def test_inertia_matches_labels(self, blobs):
        points, _ = blobs
        result = KMeans(n_clusters=3, seed=0).fit(points)
        manual = float(
            ((points - result.centroids[result.labels]) ** 2).sum()
        )
        assert result.inertia == pytest.approx(manual, rel=1e-9)

    def test_converges_on_easy_data(self, blobs):
        points, _ = blobs
        result = KMeans(n_clusters=3, seed=0).fit(points)
        assert result.converged

    def test_iterations_monotone_cost(self, blobs):
        """Lloyd never increases inertia with more iterations."""
        points, _ = blobs
        short = KMeans(n_clusters=3, max_iter=1, seed=4).fit(points)
        long = KMeans(n_clusters=3, max_iter=50, seed=4).fit(points)
        assert long.inertia <= short.inertia + 1e-9

    def test_deterministic_given_seed(self, blobs):
        points, _ = blobs
        a = KMeans(n_clusters=3, seed=11).fit(points)
        b = KMeans(n_clusters=3, seed=11).fit(points)
        assert np.array_equal(a.labels, b.labels)

    def test_k_larger_than_n(self, rng):
        points = rng.normal(size=(4, 2))
        result = KMeans(n_clusters=10, seed=0).fit(points)
        assert result.centroids.shape[0] == 4

    def test_duplicate_points(self):
        points = np.tile([1.0, 2.0], (30, 1))
        result = KMeans(n_clusters=2, seed=0).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iter=0)

    def test_non_2d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(rng.normal(size=7))
