"""Tests for the CF-summary compression study."""

import pytest

from repro.datagen.generator import DatasetGenerator, GeneratorParams, Pattern
from repro.workloads.compression import compression_sweep


@pytest.fixture(scope="module")
def dataset():
    params = GeneratorParams(
        pattern=Pattern.GRID,
        n_clusters=9,
        n_low=60,
        n_high=60,
        r_low=1.0,
        r_high=1.0,
        grid_spacing=8.0,
        seed=41,
    )
    return DatasetGenerator().generate(params, name="grid9")


class TestCompressionSweep:
    def test_one_point_per_threshold(self, dataset):
        points = compression_sweep(dataset, [0.0, 1.0, 2.0])
        assert [p.threshold for p in points] == [0.0, 1.0, 2.0]

    def test_entries_monotone_in_threshold(self, dataset):
        points = compression_sweep(dataset, [0.0, 0.5, 1.0, 2.0])
        entries = [p.entries for p in points]
        assert all(a >= b for a, b in zip(entries, entries[1:]))

    def test_distortion_monotone(self, dataset):
        points = compression_sweep(dataset, [0.0, 1.0, 2.0])
        distortions = [p.distortion for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(distortions, distortions[1:]))

    def test_zero_threshold_zero_distortion(self, dataset):
        (point,) = compression_sweep(dataset, [0.0])
        # Distinct points stay singletons: representing each point by
        # its own centroid is lossless (up to sqrt-of-cancellation
        # float residue in the radius formula).
        assert point.distortion == pytest.approx(0.0, abs=1e-6)

    def test_ratio_accounts_bytes(self, dataset):
        (point,) = compression_sweep(dataset, [2.0])
        raw = dataset.n_points * 2 * 8
        summary = point.entries * 4 * 8  # (d + 2) floats
        assert point.ratio == pytest.approx(raw / summary, rel=1e-9)

    def test_downstream_quality_stays_reasonable(self, dataset):
        points = compression_sweep(dataset, [0.0, 2.0])
        assert points[1].downstream_quality < points[0].downstream_quality * 1.6

    def test_empty_thresholds_rejected(self, dataset):
        with pytest.raises(ValueError):
            compression_sweep(dataset, [])


class TestBatchInsert:
    def test_insert_points_equals_loop(self, rng):
        import numpy as np

        from repro.core.tree import CFTree
        from repro.pagestore.page import PageLayout

        pts = rng.normal(size=(200, 2)) * 10
        layout = PageLayout(page_size=256, dimensions=2)
        batch = CFTree(layout, threshold=0.5)
        batch.insert_points(pts)
        loop = CFTree(layout, threshold=0.5)
        for p in pts:
            loop.insert_point(p)
        a, b = batch.summary_cf(), loop.summary_cf()
        assert a.n == b.n
        assert np.allclose(a.ls, b.ls)
        assert len(batch.leaf_entries()) == len(loop.leaf_entries())

    def test_insert_points_validates_shape(self, rng):
        from repro.core.tree import CFTree
        from repro.pagestore.page import PageLayout

        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout)
        with pytest.raises(ValueError):
            tree.insert_points(rng.normal(size=(5, 3)))
