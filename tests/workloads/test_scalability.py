"""Tests for the scalability sweeps."""

import pytest

from repro.datagen.generator import Pattern
from repro.workloads.scalability import scalability_in_k, scalability_in_n


class TestScalabilityInN:
    @pytest.fixture(scope="class")
    def records(self):
        return scalability_in_n(
            Pattern.GRID, [20, 40, 80], n_clusters=16, memory_bytes=32 * 1024
        )

    def test_one_record_per_size(self, records):
        assert len(records) == 3
        assert [r.n_points for r in records] == [320, 640, 1280]

    def test_time_grows_subquadratically(self, records):
        """The headline claim: near-linear scaling in N."""
        t_small = records[0].time_seconds
        t_large = records[-1].time_seconds
        n_ratio = records[-1].n_points / records[0].n_points  # 4x
        # Allow generous constant-factor noise at tiny sizes, but a
        # quadratic algorithm would blow far past this bound.
        assert t_large / t_small < n_ratio * 3

    def test_quality_reported(self, records):
        assert all(r.quality_d > 0 for r in records)


class TestScalabilityInK:
    def test_k_sweep_shapes(self):
        records = scalability_in_k(
            Pattern.RANDOM, [4, 8], per_cluster=40, memory_bytes=32 * 1024
        )
        assert len(records) == 2
        assert records[0].n_points == 160
        assert records[1].n_points == 320
