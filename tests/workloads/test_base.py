"""Tests for the base-workload experiment runner."""

import pytest

from repro.core.distances import Metric
from repro.datagen.presets import ds1
from repro.workloads.base import (
    base_birch_config,
    birch_point_labels,
    run_birch,
    run_clarans,
)


@pytest.fixture(scope="module")
def tiny_ds1():
    return ds1(scale=0.01)  # 10 points per cluster, N = 1000


class TestConfig:
    def test_table2_defaults(self):
        config = base_birch_config()
        assert config.memory_bytes == 80 * 1024
        assert config.page_size == 1024
        assert config.metric is Metric.D2_AVG_INTERCLUSTER
        assert config.initial_threshold == 0.0
        assert config.outlier_handling

    def test_overrides(self):
        config = base_birch_config(n_clusters=10, phase4_passes=0)
        assert config.n_clusters == 10
        assert config.phase4_passes == 0


class TestRunBirch:
    def test_record_fields(self, tiny_ds1):
        record = run_birch(tiny_ds1)
        assert record.dataset == "DS1"
        assert record.algorithm == "birch"
        assert record.n_points == 1000
        assert record.time_seconds > 0
        assert record.time_phases_1_3 <= record.time_seconds
        assert record.quality_d > 0
        assert record.n_clusters <= 100

    def test_extra_metrics_present(self, tiny_ds1):
        record = run_birch(tiny_ds1)
        for key in ("rebuilds", "final_threshold", "leaf_entries", "data_scans"):
            assert key in record.extra

    def test_point_labels_helper(self, tiny_ds1):
        result, labels = birch_point_labels(tiny_ds1)
        assert labels.shape == (1000,)
        assert result.n_clusters <= 100


class TestRunClarans:
    def test_record_fields(self, tiny_ds1):
        record = run_clarans(tiny_ds1, n_clusters=20, maxneighbor=50)
        assert record.algorithm == "clarans"
        assert record.quality_d > 0
        assert "cost" in record.extra
        assert record.n_clusters <= 20
