"""Tests for the Section 6.5 sensitivity sweeps."""

import pytest

from repro.datagen.generator import GeneratorParams, DatasetGenerator, Pattern
from repro.workloads.sensitivity import (
    sweep_initial_threshold,
    sweep_memory,
    sweep_outlier_options,
    sweep_page_size,
)


@pytest.fixture(scope="module")
def dataset():
    params = GeneratorParams(
        pattern=Pattern.GRID,
        n_clusters=16,
        n_low=40,
        n_high=40,
        r_low=1.0,
        r_high=1.0,
        seed=21,
    )
    return DatasetGenerator().generate(params, name="grid16")


class TestThresholdSweep:
    def test_rows_annotated(self, dataset):
        records = sweep_initial_threshold(dataset, [0.0, 0.5, 2.0])
        assert len(records) == 3
        assert [r.extra["initial_threshold"] for r in records] == [0.0, 0.5, 2.0]

    def test_large_t0_gives_fewer_entries(self, dataset):
        records = sweep_initial_threshold(dataset, [0.0, 4.0])
        assert records[1].extra["leaf_entries"] < records[0].extra["leaf_entries"]


class TestPageSizeSweep:
    def test_rows_annotated(self, dataset):
        records = sweep_page_size(dataset, [256, 1024, 4096])
        assert [r.extra["page_size"] for r in records] == [256.0, 1024.0, 4096.0]

    def test_quality_survives_page_extremes(self, dataset):
        records = sweep_page_size(dataset, [256, 4096])
        # Phase 4 compensates: quality stays in the same ballpark.
        ds = [r.quality_d for r in records]
        assert max(ds) / min(ds) < 2.5


class TestMemorySweep:
    def test_smaller_memory_forces_more_rebuilds(self, dataset):
        records = sweep_memory(dataset, [4 * 1024, 512 * 1024])
        assert records[0].extra["rebuilds"] >= records[1].extra["rebuilds"]

    def test_rows_annotated(self, dataset):
        records = sweep_memory(dataset, [8 * 1024])
        assert records[0].extra["memory_bytes"] == 8 * 1024.0


class TestOutlierOptionsSweep:
    def test_three_option_rows(self, dataset):
        records = sweep_outlier_options(dataset, memory_bytes=8 * 1024)
        assert [r.extra["options"] for r in records] == [
            "off",
            "outlier-handling",
            "outlier+delay-split",
        ]
        assert all(r.quality_d > 0 for r in records)
