"""Tests for the order-sensitivity study workload."""

import pytest

from repro.datagen.generator import DatasetGenerator, GeneratorParams, Pattern
from repro.workloads.order_study import run_order_study


@pytest.fixture(scope="module")
def dataset():
    params = GeneratorParams(
        pattern=Pattern.GRID,
        n_clusters=9,
        n_low=30,
        n_high=30,
        r_low=1.0,
        r_high=1.0,
        grid_spacing=8.0,
        seed=23,
    )
    return DatasetGenerator().generate(params, name="grid9")


class TestOrderStudy:
    def test_one_record_per_run(self, dataset):
        study = run_order_study(
            dataset,
            modes=("ordered", "randomized", "reversed"),
            shuffle_seeds=(0, 1),
        )
        # ordered + reversed once each, randomized twice.
        assert len(study.records) == 4
        modes = [r.extra["order_mode"] for r in study.records]
        assert modes.count("randomized") == 2

    def test_spread_small_on_separable_data(self, dataset):
        study = run_order_study(dataset, shuffle_seeds=(0,))
        assert study.spread < 0.4
        assert study.mean_quality > 0

    def test_qualities_aligned_with_records(self, dataset):
        study = run_order_study(dataset, modes=("ordered",), shuffle_seeds=(0,))
        assert study.qualities.shape == (1,)
        assert study.qualities[0] == pytest.approx(study.records[0].quality_d)
