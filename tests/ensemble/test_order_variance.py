"""§4.1 order sensitivity: the forest must beat the single tree's spread.

The paper concedes that insertion order perturbs a single CF-tree's
output; under a tight memory budget (frequent rebuilds, coarse leaves)
the effect is large enough to measure as ARI variance across seeded
shuffles of DS1.  The forest's whole reason to exist is to shrink that
spread — asserted here, strictly, on both CF backends.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.presets import ds1
from repro.ensemble import BirchForest, ForestConfig
from repro.evaluation.labels import adjusted_rand_index

pytestmark = [pytest.mark.ensemble, pytest.mark.parallel]

# Tight memory amplifies order sensitivity: the tree rebuilds often and
# the leaf partition depends heavily on which points arrived first.
_MEMORY_BYTES = 6 * 1024
_N_CLUSTERS = 100
_SCALE = 0.005
_SINGLE_SHUFFLES = 4
_FOREST_SEEDS = (0, 1, 2)
_MEMBERS = 8


@pytest.fixture(scope="module")
def dataset():
    ds = ds1(scale=_SCALE)
    return ds.points, ds.labels


@pytest.mark.parametrize("backend", ["stable", "classic"])
def test_consensus_variance_strictly_below_single_tree(dataset, backend):
    points, truth = dataset

    single_aris = []
    for seed in range(_SINGLE_SHUFFLES):
        order = np.random.default_rng(seed).permutation(points.shape[0])
        result = Birch(
            BirchConfig(
                n_clusters=_N_CLUSTERS,
                memory_bytes=_MEMORY_BYTES,
                cf_backend=backend,
            )
        ).fit(points[order])
        single_aris.append(adjusted_rand_index(result.labels, truth[order]))

    forest_aris = []
    for seed in _FOREST_SEEDS:
        config = ForestConfig(
            base=BirchConfig(
                n_clusters=_N_CLUSTERS,
                memory_bytes=_MEMORY_BYTES,
                cf_backend=backend,
            ),
            n_members=_MEMBERS,
            seed=seed,
            max_anchors=None,
        )
        with BirchForest(config) as forest:
            result = forest.fit(points, n_jobs=4)
        forest_aris.append(adjusted_rand_index(result.labels, truth))

    single_var = float(np.var(single_aris))
    forest_var = float(np.var(forest_aris))
    assert single_var > 0, "the single tree must actually be order-sensitive"
    assert forest_var < single_var, (
        f"[{backend}] consensus ARI variance {forest_var:.6f} must be "
        f"strictly below the single-tree variance {single_var:.6f} "
        f"(singles {single_aris}, forests {forest_aris})"
    )
    # The forest should not buy stability with quality: its median ARI
    # must be at least the single tree's.
    assert float(np.median(forest_aris)) >= float(np.median(single_aris))
