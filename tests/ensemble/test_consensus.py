"""Unit behaviour of the co-association and consensus primitives."""

import numpy as np
import pytest

from repro.ensemble import (
    average_linkage_consensus,
    coassociation,
    kmeans_consensus,
    member_votes,
)

pytestmark = pytest.mark.ensemble


class TestMemberVotes:
    def test_votes_use_lowest_index_tie_rule(self):
        anchors = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 0.0]])
        centroids = np.array([[0.0, 0.0], [10.0, 0.0]])
        votes = member_votes(anchors, [centroids], [None])
        # The midpoint anchor ties and resolves to the lower index.
        np.testing.assert_array_equal(votes, [[0, 1, 0]])

    def test_feature_subset_projects_anchors(self):
        # In full space both anchors are nearest centroid 0; member 1
        # only sees column 1, where the second anchor flips to
        # centroid 1.
        anchors = np.array([[0.0, 0.0], [1.0, 9.0]])
        centroids = np.array([[0.0, 0.0], [100.0, 10.0]])
        sub_centroids = centroids[:, [1]]
        votes = member_votes(
            anchors,
            [centroids, sub_centroids],
            [None, np.array([1])],
        )
        np.testing.assert_array_equal(votes, [[0, 0], [0, 1]])

    def test_mismatched_member_lists_raise(self):
        anchors = np.zeros((2, 2))
        with pytest.raises(ValueError, match="one feature subset"):
            member_votes(anchors, [anchors], [])


class TestCoassociation:
    def test_unanimous_members_give_all_ones(self):
        votes = np.array([[0, 0, 1], [2, 2, 0]])
        w = coassociation(votes)
        expected = np.array(
            [[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        np.testing.assert_array_equal(w, expected)

    def test_disagreement_is_fractional(self):
        votes = np.array([[0, 0], [0, 1]])
        w = coassociation(votes)
        assert w[0, 1] == w[1, 0] == 0.5
        np.testing.assert_array_equal(np.diag(w), [1.0, 1.0])

    def test_empty_votes_raise(self):
        with pytest.raises(ValueError, match="non-empty"):
            coassociation(np.empty((0, 3), dtype=np.int64))


class TestAverageLinkage:
    def test_block_structure_recovers_clusters(self):
        w = np.array(
            [
                [1.0, 0.9, 0.1, 0.0],
                [0.9, 1.0, 0.0, 0.1],
                [0.1, 0.0, 1.0, 0.8],
                [0.0, 0.1, 0.8, 1.0],
            ]
        )
        labels = average_linkage_consensus(w, np.ones(4), 2)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1])

    def test_labels_are_dense_and_first_appearance_ordered(self):
        w = np.eye(5)
        w[1, 4] = w[4, 1] = 0.9
        labels = average_linkage_consensus(w, np.ones(5), 4)
        assert labels.min() == 0 and labels.max() == 3
        # First occurrences appear in increasing order.
        firsts = [int(np.flatnonzero(labels == c)[0]) for c in range(4)]
        assert firsts == sorted(firsts)
        assert labels[1] == labels[4]

    def test_mass_weights_steer_merges(self):
        # Anchor 2 is equally similar to 0 and 1 pairwise, but anchor
        # 1 carries far more mass, diluting its average link — the
        # merge goes to the light anchor 0.
        w = np.array(
            [
                [1.0, 0.0, 0.6],
                [0.0, 1.0, 0.6],
                [0.6, 0.6, 1.0],
            ]
        )
        heavy = average_linkage_consensus(w, np.array([1.0, 9.0, 1.0]), 2)
        assert heavy[2] == heavy[0] and heavy[1] != heavy[0]

    def test_n_clusters_at_least_anchor_count_is_identity(self):
        w = np.eye(3)
        np.testing.assert_array_equal(
            average_linkage_consensus(w, np.ones(3), 7), [0, 1, 2]
        )

    def test_input_validation(self):
        with pytest.raises(ValueError, match="square"):
            average_linkage_consensus(np.zeros((2, 3)), np.ones(2), 1)
        with pytest.raises(ValueError, match="positive"):
            average_linkage_consensus(np.eye(2), np.array([1.0, 0.0]), 1)
        with pytest.raises(ValueError, match="n_clusters"):
            average_linkage_consensus(np.eye(2), np.ones(2), 0)


class TestKMeansConsensus:
    def test_recovers_block_structure(self):
        w = np.array(
            [
                [1.0, 0.9, 0.0, 0.0],
                [0.9, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.9],
                [0.0, 0.0, 0.9, 1.0],
            ]
        )
        labels = kmeans_consensus(w, np.ones(4), 2, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_seeded_and_repeatable(self):
        rng = np.random.default_rng(5)
        votes = rng.integers(0, 3, size=(7, 20))
        w = coassociation(votes)
        weights = rng.integers(1, 50, size=20).astype(float)
        first = kmeans_consensus(w, weights, 3, seed=42)
        again = kmeans_consensus(w, weights, 3, seed=42)
        np.testing.assert_array_equal(first, again)
        assert first.min() == 0 and first.max() <= 2

    def test_k_clamped_to_anchor_count(self):
        labels = kmeans_consensus(np.eye(2), np.ones(2), 10, seed=0)
        assert set(labels) == {0, 1}
