"""BirchForest end-to-end: determinism, supervision, serving, config."""

import numpy as np
import pytest

from repro.core.config import BirchConfig
from repro.ensemble import BirchForest, ForestConfig
from repro.evaluation.labels import adjusted_rand_index
from repro.observe import ObserveConfig
from repro.parallel.chaos import ChaosInjector
from repro.parallel.pool import FORCE_SERIAL_ENV
from repro.parallel.worker import OP_MEMBER
from repro.serve import FrozenModel

pytestmark = pytest.mark.ensemble


def _blobs(n_per=70, d=2, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(4, d))
    points = np.vstack(
        [c + rng.normal(scale=0.4, size=(n_per, d)) for c in centers]
    )
    truth = np.repeat(np.arange(4), n_per)
    return points, truth


def _config(**overrides):
    base = BirchConfig(n_clusters=4, memory_bytes=30_000)
    defaults = dict(
        base=base, n_members=4, seed=9, threshold_jitter=0.2, max_anchors=64
    )
    defaults.update(overrides)
    return ForestConfig(**defaults)


def _snapshot(result):
    return (
        result.centroids.tobytes(),
        result.labels.tobytes(),
        result.entry_labels.tobytes(),
        result.coassoc.tobytes(),
    )


class TestDeterminism:
    @pytest.mark.parallel
    def test_byte_identical_across_n_jobs(self):
        points, _ = _blobs()
        snaps = []
        for jobs in (1, 2, 4):
            with BirchForest(_config()) as forest:
                snaps.append(_snapshot(forest.fit(points, n_jobs=jobs)))
        assert snaps[0] == snaps[1] == snaps[2]

    @pytest.mark.parallel
    def test_serial_env_fallback_is_identical(self, monkeypatch):
        points, _ = _blobs()
        with BirchForest(_config()) as forest:
            pooled = _snapshot(forest.fit(points, n_jobs=2))
        monkeypatch.setenv(FORCE_SERIAL_ENV, "1")
        with BirchForest(_config()) as forest:
            serial = _snapshot(forest.fit(points, n_jobs=2))
        assert pooled == serial

    def test_different_seed_changes_member_plans(self):
        # The perturbation plan is a pure function of (seed, member):
        # repeatable for one seed, different across seeds.
        with BirchForest(_config(seed=1)) as one, BirchForest(
            _config(seed=2)
        ) as two, BirchForest(_config(seed=1)) as again:
            plans = lambda f: [f._member_plan(m, 2)[1] for m in range(4)]
            assert plans(one) == plans(again)
            assert plans(one) != plans(two)
            # Jitter perturbs the rebuild trajectory per member.
            factors = [
                one._member_plan(m, 2)[0].expansion_factor for m in range(4)
            ]
            assert len(set(factors)) == 4


class TestSupervisedMembers:
    @pytest.mark.chaos
    @pytest.mark.parallel
    def test_member_crash_retries_without_poisoning_forest(self):
        points, _ = _blobs()
        with BirchForest(_config()) as forest:
            clean = forest.fit(points, n_jobs=2)
        chaos = ChaosInjector(
            mode="kill", ops=(OP_MEMBER,), fail_on_task=1, max_faults=1
        )
        with BirchForest(_config(), chaos_injector=chaos) as forest:
            survived = forest.fit(points, n_jobs=2)
        assert _snapshot(survived) == _snapshot(clean)
        kinds = {i["kind"] for i in survived.incidents}
        assert "worker.death" in kinds
        assert all(i["op"] == OP_MEMBER for i in survived.incidents)
        # The clean run saw no ladder activity.
        assert clean.incidents == []


class TestConsensusQuality:
    def test_consensus_labels_match_truth_on_blobs(self):
        points, truth = _blobs()
        with BirchForest(_config()) as forest:
            result = forest.fit(points, n_jobs=1)
        assert adjusted_rand_index(result.labels, truth) > 0.95
        # Mass conservation: anchors partition the data exactly.
        assert sum(cf.n for cf in result.clusters) == points.shape[0]
        assert sum(cf.n for cf in result.anchors) == points.shape[0]

    def test_kmeans_consensus_and_feature_subsampling(self):
        points, truth = _blobs(d=6)
        config = _config(
            base=BirchConfig(n_clusters=4, memory_bytes=60_000),
            consensus="kmeans",
            feature_fraction=0.5,
            n_members=5,
        )
        with BirchForest(config) as forest:
            result = forest.fit(points, n_jobs=1)
        assert adjusted_rand_index(result.labels, truth) > 0.9
        # Member 0 anchors the consensus in the full feature space;
        # the others were subsampled.
        features = [s["features"] for s in result.member_stats]
        assert features[0] == 6
        assert all(f == 3 for f in features[1:])

    def test_predict_routes_through_shared_kernel(self):
        points, _ = _blobs()
        with BirchForest(_config()) as forest:
            result = forest.fit(points, n_jobs=1)
            np.testing.assert_array_equal(
                forest.predict(points), result.labels
            )


class TestServing:
    def test_from_forest_artifact_round_trip(self, tmp_path):
        points, _ = _blobs()
        with BirchForest(_config()) as forest:
            result = forest.fit(points, n_jobs=1)
        model = FrozenModel.from_forest(result)
        source = model.metadata["source"]
        assert source["kind"] == "forest"
        assert source["n_members"] == 4
        assert source["consensus"] == "average"
        path = tmp_path / "forest.frz"
        model.save(path)
        loaded = FrozenModel.load(path, verify=True)
        np.testing.assert_array_equal(loaded.predict(points), result.labels)
        assert loaded.metadata["source"]["seed"] == 9


class TestTelemetry:
    def test_ensemble_counters_and_snapshot(self):
        points, _ = _blobs()
        config = _config(
            base=BirchConfig(
                n_clusters=4, memory_bytes=30_000, observe=ObserveConfig()
            )
        )
        with BirchForest(config) as forest:
            result = forest.fit(points, n_jobs=1)
        assert result.telemetry is not None
        counters = result.telemetry.counters
        assert counters["ensemble.fits"] == 1
        assert counters["ensemble.members"] == 4
        assert counters["ensemble.anchors"] == len(result.anchors)
        assert counters["ensemble.consensus_clusters"] == len(result.clusters)

    def test_telemetry_never_changes_output(self):
        points, _ = _blobs()
        with BirchForest(_config()) as forest:
            silent = forest.fit(points, n_jobs=1)
        config = _config(
            base=BirchConfig(
                n_clusters=4, memory_bytes=30_000, observe=ObserveConfig()
            )
        )
        with BirchForest(config) as forest:
            observed = forest.fit(points, n_jobs=1)
        assert _snapshot(silent) == _snapshot(observed)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        base = BirchConfig(n_clusters=2)
        with pytest.raises(ValueError, match="n_members"):
            ForestConfig(base=base, n_members=0)
        with pytest.raises(ValueError, match="feature_fraction"):
            ForestConfig(base=base, feature_fraction=1.5)
        with pytest.raises(ValueError, match="threshold_jitter"):
            ForestConfig(base=base, threshold_jitter=1.0)
        with pytest.raises(ValueError, match="consensus"):
            ForestConfig(base=base, consensus="vote")
        with pytest.raises(ValueError, match="max_anchors"):
            ForestConfig(base=base, max_anchors=0)
        with pytest.raises(ValueError, match="base"):
            ForestConfig(base=7)

    def test_dict_coercion(self):
        config = ForestConfig(base={"n_clusters": 3}, n_members=2)
        assert isinstance(config.base, BirchConfig)
        assert config.base.n_clusters == 3

    def test_rejects_bad_points(self):
        from repro.errors import InvalidPointError

        with BirchForest(_config(n_members=2)) as forest:
            with pytest.raises(InvalidPointError, match="NaN"):
                forest.fit(np.array([[0.0, 1.0], [np.nan, 2.0]]))
            with pytest.raises(InvalidPointError, match="non-empty"):
                forest.fit(np.empty((0, 2)))
