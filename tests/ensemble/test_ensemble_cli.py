"""The ``ensemble`` subcommand: fit, compile, predict, interop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.serve import FrozenModel

pytestmark = pytest.mark.ensemble

_FOREST = ["--members", "3", "--seed", "5", "--max-anchors", "64"]


@pytest.fixture
def csv(tmp_path, rng):
    points = np.concatenate(
        [rng.normal(c, 0.4, size=(60, 2)) for c in ((0, 0), (9, 0), (0, 9))]
    )
    truth = np.repeat(np.arange(3), 60)
    path = tmp_path / "points.csv"
    np.savetxt(path, np.column_stack([points, truth]), delimiter=",", fmt="%.8g")
    return path, points, truth


class TestEnsembleFit:
    def test_fit_scores_and_saves(self, csv, tmp_path, capsys):
        path, points, truth = csv
        labels_out = tmp_path / "labels.csv"
        result_out = tmp_path / "result.npz"
        code = main(
            ["ensemble", "fit", str(path), "-k", "3", *_FOREST,
             "--truth-column",
             "--save-labels", str(labels_out),
             "--save-result", str(result_out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "forest of 3 members" in stdout
        assert "ARI=" in stdout
        labels = np.loadtxt(labels_out, dtype=np.int64)
        assert labels.shape == (points.shape[0],)
        assert result_out.exists()

    def test_saved_result_compiles_through_serve(self, csv, tmp_path):
        # Forest result archives feed the generic serve pipeline.
        path, points, _ = csv
        result_out = tmp_path / "result.npz"
        artifact = tmp_path / "viaserve.frz"
        assert main(
            ["ensemble", "fit", str(path), "-k", "3", *_FOREST,
             "--truth-column", "--save-result", str(result_out)]
        ) == 0
        assert main(
            ["serve", "compile", str(result_out), str(artifact)]
        ) == 0
        model = FrozenModel.load(artifact)
        assert model.n_clusters == 3
        assert model.predict(points).shape == (points.shape[0],)


class TestEnsembleCompileAndPredict:
    def test_compile_then_predict_round_trip(self, csv, tmp_path, capsys):
        path, points, truth = csv
        artifact = tmp_path / "forest.frz"
        # The CSV carries a truth column; strip it for compile/predict
        # by rewriting features only.
        features = tmp_path / "features.csv"
        np.savetxt(features, points, delimiter=",", fmt="%.8g")
        assert main(
            ["ensemble", "compile", str(features), "-k", "3", *_FOREST,
             str(artifact)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "3-member forest" in stdout
        assert "payload sha256" in stdout
        out = tmp_path / "pred.csv"
        assert main(
            ["ensemble", "predict", str(artifact), str(features),
             "--verify", "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "source=forest" in stdout
        labels = np.loadtxt(out, dtype=np.int64)
        assert set(np.unique(labels)) == {0, 1, 2}
        # Dense consensus labels must agree with ground truth up to
        # permutation: one consensus label per true blob.
        for c in range(3):
            assert len(set(labels[truth == c])) == 1

    def test_compiled_artifact_is_inspectable(self, csv, tmp_path, capsys):
        path, points, _ = csv
        features = tmp_path / "features.csv"
        np.savetxt(features, points, delimiter=",", fmt="%.8g")
        artifact = tmp_path / "forest.frz"
        assert main(
            ["ensemble", "compile", str(features), "-k", "3", *_FOREST,
             str(artifact)]
        ) == 0
        capsys.readouterr()
        assert main(["inspect", str(artifact)]) == 0
        assert "compiled from forest" in capsys.readouterr().out
