"""Streaming / incremental usage of the estimator."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig


@pytest.fixture
def stream_batches(rng):
    centers = np.array([[0.0, 0.0], [15.0, 0.0], [0.0, 15.0], [15.0, 15.0]])
    points = np.concatenate([rng.normal(c, 0.5, size=(200, 2)) for c in centers])
    rng.shuffle(points)
    return [points[i : i + 100] for i in range(0, 800, 100)]


class TestStreaming:
    def test_batchwise_equals_single_shot_phase1(self, stream_batches):
        """Feeding batches or everything at once builds the same summary."""
        config = BirchConfig(n_clusters=4, phase4_passes=0)
        streamed = Birch(config)
        for batch in stream_batches:
            streamed.partial_fit(batch)

        single = Birch(BirchConfig(n_clusters=4, phase4_passes=0))
        single.partial_fit(np.concatenate(stream_batches))

        a = streamed.tree.summary_cf()
        b = single.tree.summary_cf()
        assert a.n == b.n
        assert np.allclose(a.ls, b.ls, rtol=1e-9)
        assert a.ss == pytest.approx(b.ss, rel=1e-9)

    def test_finalize_after_stream_recovers_clusters(self, stream_batches):
        config = BirchConfig(n_clusters=4, phase4_passes=0)
        estimator = Birch(config)
        for batch in stream_batches:
            estimator.partial_fit(batch)
        result = estimator.finalize()
        assert result.n_clusters == 4
        centers = np.array([[0.0, 0.0], [15.0, 0.0], [0.0, 15.0], [15.0, 15.0]])
        for c in centers:
            assert np.linalg.norm(result.centroids - c, axis=1).min() < 1.0

    def test_memory_stays_bounded_across_batches(self, stream_batches):
        config = BirchConfig(
            n_clusters=4, memory_bytes=8 * 1024, phase4_passes=0
        )
        estimator = Birch(config)
        for batch in stream_batches:
            estimator.partial_fit(batch)
            budget = estimator._budget
            assert budget is not None
            assert budget.pages_in_use <= budget.capacity_pages + 33

    def test_predict_after_finalize(self, stream_batches):
        estimator = Birch(BirchConfig(n_clusters=4, phase4_passes=0))
        for batch in stream_batches:
            estimator.partial_fit(batch)
        estimator.finalize()
        labels = estimator.predict(np.array([[0.0, 0.0], [15.0, 15.0]]))
        assert labels[0] != labels[1]
