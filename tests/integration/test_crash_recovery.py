"""End-to-end fault injection: crashes, retries and degradation policies.

Marked ``faults``; CI replays these under a matrix of ``--fault-seed``
values, so any seed-dependent behaviour must hold for *every* seed.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.birch import Birch, BirchResult
from repro.core.config import BirchConfig
from repro.errors import PermanentIOError
from repro.pagestore.faults import FaultInjector

pytestmark = pytest.mark.faults

_N = 1500


def _points() -> np.ndarray:
    rng = np.random.default_rng(7)
    centers = rng.uniform(0.0, 30.0, size=(5, 2))
    return np.concatenate(
        [rng.normal(c, 0.5, size=(_N // 5, 2)) for c in centers]
    )


def _config(**overrides) -> BirchConfig:
    defaults = dict(
        n_clusters=5,
        memory_bytes=10 * 1024,
        total_points_hint=_N,
        phase4_passes=0,
    )
    defaults.update(overrides)
    return BirchConfig(**defaults)


def _no_sleep(_delay: float) -> None:
    pass


def _assert_identical(a: BirchResult, b: BirchResult) -> None:
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.entry_labels, b.entry_labels)
    assert a.final_threshold == b.final_threshold
    assert a.rebuilds == b.rebuilds
    assert a.tree_stats == b.tree_stats


def _baseline() -> BirchResult:
    est = Birch(_config())
    est.partial_fit(_points())
    return est.finalize()


class TestCrashAndResume:
    def test_crash_restart_loop_reproduces_fault_free_result(
        self, tmp_path: Path, fault_seed: int
    ) -> None:
        """A permanently faulting disk kills the stream; the operator
        resumes from the last periodic checkpoint (or restarts when the
        crash predates the first one) and ends with the exact fault-free
        result."""
        points = _points()
        expected = _baseline()

        ckpt = tmp_path / "stream.ckpt"
        config = _config(
            checkpoint_every_points=250, checkpoint_path=str(ckpt)
        )
        injector = FaultInjector(
            kind="permanent",
            fail_probability=0.3,
            seed=fault_seed,
            max_faults=1,
        )
        est = Birch(config, outlier_injector=injector, sleep=_no_sleep)
        crashes = 0
        pos = 0
        chunk = 50
        while pos < len(points):
            try:
                est.partial_fit(points[pos : pos + chunk])
                pos += chunk
            except PermanentIOError:
                crashes += 1
                assert crashes < 5, "recovery loop is not converging"
                if ckpt.exists():
                    est = Birch.resume(ckpt)  # replaced the bad disk
                else:
                    est = Birch(config)  # crashed before any snapshot
                pos = est.points_seen
        actual = est.finalize()
        _assert_identical(expected, actual)

    def test_transient_faults_heal_to_identical_result(self) -> None:
        """An every-3rd-write transient schedule is healed entirely by
        the retry loop: same result as a run on healthy storage, with
        the retries visible in the handler's counters."""
        expected = _baseline()
        injector = FaultInjector(kind="transient", fail_every=3)
        est = Birch(_config(), outlier_injector=injector, sleep=_no_sleep)
        est.partial_fit(_points())
        actual = est.finalize()
        _assert_identical(expected, actual)
        assert injector.faults_injected > 0
        assert est._outlier_handler is not None
        assert (
            est._outlier_handler.stats.transient_retries
            == injector.faults_injected
        )

    def test_seeded_fault_schedule_is_reproducible(
        self, fault_seed: int
    ) -> None:
        def run() -> tuple[BirchResult, int]:
            injector = FaultInjector(
                kind="transient",
                fail_probability=0.2,
                seed=fault_seed,
                max_faults=2,
            )
            est = Birch(
                _config(), outlier_injector=injector, sleep=_no_sleep
            )
            est.partial_fit(_points())
            return est.finalize(), injector.faults_injected

        first, first_faults = run()
        second, second_faults = run()
        _assert_identical(first, second)
        assert first_faults == second_faults


class TestDegradationPolicies:
    def _run(self, policy: str) -> tuple[BirchResult, Birch]:
        injector = FaultInjector(kind="permanent", fail_every=4)
        est = Birch(
            _config(outlier_fault_policy=policy),
            outlier_injector=injector,
            sleep=_no_sleep,
        )
        est.partial_fit(_points())
        return est.finalize(), est

    def test_drop_policy_accounts_for_every_lost_point(self) -> None:
        result, _ = self._run("drop")
        assert result.outlier_disk_degraded
        assert result.dropped_outlier_entries > 0
        assert result.dropped_outlier_points > 0
        clustered = sum(cf.n for cf in result.clusters)
        outlying = sum(cf.n for cf in result.outliers)
        assert clustered + outlying + result.dropped_outlier_points == _N

    def test_reabsorb_policy_loses_nothing(self) -> None:
        result, est = self._run("reabsorb")
        assert result.outlier_disk_degraded
        assert result.dropped_outlier_points == 0
        clustered = sum(cf.n for cf in result.clusters)
        outlying = sum(cf.n for cf in result.outliers)
        assert clustered + outlying == _N

    def test_raise_policy_propagates(self) -> None:
        injector = FaultInjector(kind="permanent", fail_every=4)
        est = Birch(
            _config(outlier_fault_policy="raise"),
            outlier_injector=injector,
            sleep=_no_sleep,
        )
        with pytest.raises(PermanentIOError):
            est.partial_fit(_points())
