"""Order-(in)sensitivity: Tables 4-5's DS vs DSO comparison.

The paper's claim: BIRCH's quality on a randomized input order is
essentially the same as on the ordered input, whereas CLARANS degrades.
We verify the BIRCH half quantitatively and CLARANS directionally.
"""

import pytest

from repro.datagen.presets import ds1, ds1o, ds2, ds2o
from repro.workloads.base import base_birch_config, run_birch


class TestBirchOrderInsensitivity:
    @pytest.mark.parametrize(
        "ordered_maker, shuffled_maker",
        [(ds1, ds1o), (ds2, ds2o)],
        ids=["DS1-vs-DS1O", "DS2-vs-DS2O"],
    )
    def test_quality_stable_under_shuffling(self, ordered_maker, shuffled_maker):
        scale = 0.03
        ordered = ordered_maker(scale=scale)
        shuffled = shuffled_maker(scale=scale)
        config_o = base_birch_config(
            n_clusters=100, total_points_hint=ordered.n_points
        )
        config_s = base_birch_config(
            n_clusters=100, total_points_hint=shuffled.n_points
        )
        rec_o = run_birch(ordered, config_o)
        rec_s = run_birch(shuffled, config_s)
        # Table 4: D changes by a few percent between DS and DSO.
        ratio = rec_s.quality_d / rec_o.quality_d
        assert 0.7 < ratio < 1.4

    def test_point_multiset_identical(self):
        """Sanity: the O variant really is the same data, reordered."""
        import numpy as np

        a = ds1(scale=0.01)
        b = ds1o(scale=0.01)
        sa = np.sort(a.points.view("f8,f8"), axis=0)
        sb = np.sort(b.points.view("f8,f8"), axis=0)
        assert np.array_equal(sa, sb)
