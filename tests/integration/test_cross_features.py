"""Cross-feature integration: persistence x merging x diagnostics x bounds.

Each test exercises a *combination* of features a real deployment would
chain together, catching interface mismatches unit tests cannot.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.diagnostics import diagnose
from repro.core.global_clustering import agglomerative_cf
from repro.core.merge import merge_trees
from repro.core.serialization import load_tree, save_tree
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


@pytest.fixture
def shard_points(rng):
    centers = [(0.0, 0.0), (25.0, 0.0), (0.0, 25.0), (25.0, 25.0)]
    points = np.concatenate(
        [rng.normal(c, 0.5, size=(120, 2)) for c in centers]
    )
    rng.shuffle(points)
    return points, centers


class TestPersistThenMerge:
    def test_save_load_merge_cluster(self, shard_points, tmp_path, rng):
        """Build shards, persist them, reload, merge, cluster — the
        full distributed-pipeline shape."""
        points, centers = shard_points

        paths = []
        for i in range(3):
            layout = PageLayout(page_size=512, dimensions=2)
            tree = CFTree(layout, threshold=0.5)
            tree.insert_points(points[i::3])
            path = tmp_path / f"shard{i}.npz"
            save_tree(path, tree)
            paths.append(path)

        shards = [load_tree(p) for p in paths]
        merged = merge_trees(shards)
        assert merged.summary_cf().n == points.shape[0]
        merged.check_invariants()

        clustering = agglomerative_cf(merged.leaf_entries(), n_clusters=4)
        for c in centers:
            nearest = np.linalg.norm(
                clustering.centroids - np.array(c), axis=1
            ).min()
            assert nearest < 0.6


class TestDiagnoseAfterEverything:
    def test_diagnose_after_pressure_and_outliers(self, rng):
        points = np.concatenate(
            [
                rng.normal(0, 0.5, size=(800, 2)),
                rng.uniform(-50, 50, size=(60, 2)),
            ]
        )
        config = BirchConfig(
            n_clusters=3,
            memory_bytes=4 * 1024,
            total_points_hint=len(points),
            phase4_passes=0,
        )
        estimator = Birch(config)
        estimator.fit(points)
        diag = diagnose(estimator.tree)
        assert diag.total_nodes == estimator.tree.node_count
        assert diag.threshold == estimator.tree.threshold
        # Pressure forced absorption: median entry size exceeds 1.
        assert diag.median_entry_points >= 1.0

    def test_diagnose_roundtrips_through_serialization(self, rng, tmp_path):
        layout = PageLayout(page_size=512, dimensions=2)
        tree = CFTree(layout, threshold=0.8)
        tree.insert_points(rng.normal(size=(400, 2)) * 10)
        before = diagnose(tree)
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        after = diagnose(load_tree(path))
        # Points are preserved exactly; re-insertion may merge entries
        # that the original insertion order had kept apart, so the
        # entry count can only shrink.
        assert int(before.entry_points.sum()) == int(after.entry_points.sum())
        assert after.leaf_entry_count <= before.leaf_entry_count


class TestDiameterBoundWithWeights:
    def test_weighted_stream_with_diameter_phase3(self, rng):
        """Weighted partial_fit + diameter-driven Phase 3 + finalize."""
        coords = np.array(
            [[0.0, 0.0], [0.3, 0.1], [15.0, 0.0], [15.2, 0.2], [0.0, 15.0]]
        )
        weights = np.array([50, 30, 40, 40, 70])
        config = BirchConfig(
            n_clusters=1,
            phase3_stop_diameter=3.0,
            phase4_passes=0,
        )
        estimator = Birch(config)
        estimator.partial_fit(coords, weights=weights)
        result = estimator.finalize()
        assert result.n_clusters == 3
        assert sum(cf.n for cf in result.clusters) == int(weights.sum())
        for cf in result.clusters:
            assert cf.diameter <= 3.0 + 1e-9


class TestAblationCombos:
    def test_no_refinement_no_outliers_dmin_mode(self, rng):
        """The most stripped-down configuration still works end to end."""
        points = np.concatenate(
            [rng.normal(c, 0.4, size=(150, 2)) for c in ((0, 0), (12, 0))]
        )
        config = BirchConfig(
            n_clusters=2,
            memory_bytes=4 * 1024,
            merging_refinement=False,
            outlier_handling=False,
            threshold_mode="dmin",
            phase4_passes=0,
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 2
        assert sum(cf.n for cf in result.clusters) == 300

    def test_radius_kind_with_medoids_phase3(self, rng):
        from repro.core.tree import ThresholdKind

        points = np.concatenate(
            [rng.normal(c, 0.4, size=(100, 2)) for c in ((0, 0), (14, 0))]
        )
        config = BirchConfig(
            n_clusters=2,
            threshold_kind=ThresholdKind.RADIUS,
            phase3_algorithm="medoids",
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 2
