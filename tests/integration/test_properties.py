"""End-to-end property-based tests of the full pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.birch import Birch
from repro.core.config import BirchConfig

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)

small_datasets = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 80), st.just(2)),
    elements=finite,
)


class TestPipelineProperties:
    @given(points=small_datasets, k=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_fit_always_produces_valid_result(self, points, k):
        result = Birch(BirchConfig(n_clusters=k)).fit(points)
        # Clusters conserve points exactly.
        assert sum(cf.n for cf in result.clusters) == points.shape[0]
        # Labels valid and within range.
        assert result.labels is not None
        assert result.labels.shape == (points.shape[0],)
        assert (result.labels >= 0).all()
        assert (result.labels < len(result.clusters)).all()
        # Centroids are finite.
        assert np.isfinite(result.centroids).all()
        # Never more clusters than requested... (Phase 4 may leave some
        # empty, but the list length matches the Phase 3 output).
        assert 1 <= result.n_clusters <= max(k, 1)

    @given(points=small_datasets)
    @settings(max_examples=15, deadline=None)
    def test_memory_pressure_never_loses_points(self, points):
        config = BirchConfig(
            n_clusters=2,
            memory_bytes=2 * 1024,
            phase4_passes=0,
            total_points_hint=points.shape[0],
        )
        estimator = Birch(config)
        estimator.partial_fit(points)
        handler = estimator._outlier_handler
        on_disk = handler.pending_points if handler else 0
        assert estimator.tree.points + on_disk == points.shape[0]
        estimator.tree.check_invariants()

    @given(
        points=small_datasets,
        split=st.integers(1, 79),
    )
    @settings(max_examples=15, deadline=None)
    def test_batch_splitting_is_transparent(self, points, split):
        """partial_fit in two batches == one batch, summary-wise."""
        if split >= points.shape[0]:
            split = points.shape[0] - 1
        if split < 1:
            return
        one = Birch(BirchConfig(n_clusters=2, phase4_passes=0))
        one.partial_fit(points)
        two = Birch(BirchConfig(n_clusters=2, phase4_passes=0))
        two.partial_fit(points[:split])
        two.partial_fit(points[split:])
        a, b = one.tree.summary_cf(), two.tree.summary_cf()
        assert a.n == b.n
        assert np.allclose(a.ls, b.ls, rtol=1e-9, atol=1e-9)

    @given(points=small_datasets, k=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_predict_is_consistent_with_centroids(self, points, k):
        estimator = Birch(BirchConfig(n_clusters=k))
        result = estimator.fit(points)
        labels = estimator.predict(points)
        # Every predicted label indexes the closest centroid.
        dist2 = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(
            axis=2
        )
        best = dist2[np.arange(points.shape[0]), labels]
        assert np.allclose(best, dist2.min(axis=1))


@pytest.mark.evolve
class TestAdditivityRoundTrip:
    """The CF additivity theorem run backwards: add then subtract.

    The decay/forgetting machinery leans on ``merge`` and ``subtract``
    being exact inverses up to round-off; these properties pin that
    down for both backends on arbitrary splits.
    """

    @given(points=small_datasets, cut=st.integers(1, 79))
    @settings(max_examples=25, deadline=None)
    def test_stable_add_then_subtract_recovers_the_rest(self, points, cut):
        from repro.core.features import StableCF

        cut = min(cut, points.shape[0] - 1)
        if cut < 1:
            return
        whole = StableCF.from_points(points)
        part = StableCF.from_points(points[:cut])
        rest = whole.subtract(part)
        expected = StableCF.from_points(points[cut:])
        assert rest.n == expected.n
        assert np.allclose(rest.mean, expected.mean, rtol=1e-6, atol=1e-6)
        scale = max(abs(expected.ssd), 1.0)
        assert abs(rest.ssd - expected.ssd) <= 1e-5 * scale

    @given(points=small_datasets, cut=st.integers(1, 79))
    @settings(max_examples=25, deadline=None)
    def test_classic_add_then_subtract_recovers_the_rest(self, points, cut):
        from repro.core.features import CF

        cut = min(cut, points.shape[0] - 1)
        if cut < 1:
            return
        whole = CF.from_points(points)
        part = CF.from_points(points[:cut])
        rest = whole.subtract(part)
        expected = CF.from_points(points[cut:])
        assert rest.n == expected.n
        assert np.allclose(rest.ls, expected.ls, rtol=1e-9, atol=1e-9)
        scale = max(abs(expected.ss), 1.0)
        assert abs(rest.ss - expected.ss) <= 1e-6 * scale

    @given(points=small_datasets)
    @settings(max_examples=25, deadline=None)
    def test_subtracting_a_non_subset_raises_not_mints_variance(self, points):
        from repro.core.features import StableCF

        whole = StableCF.from_points(points)
        # A "subset" translated far away can never have been merged in:
        # the guard must raise rather than fabricate negative spread.
        # (Leave a remainder — removing *all* mass legitimately returns
        # an empty CF without consulting the geometry.)
        alien = StableCF(
            float(points.shape[0] - 1),
            whole.mean + 1e4,
            whole.ssd * 100.0 + 1e8,
        )
        with pytest.raises(ValueError):
            whole.subtract(alien)

    @given(points=small_datasets)
    @settings(max_examples=25, deadline=None)
    def test_subtract_everything_leaves_an_empty_cf(self, points):
        from repro.core.features import StableCF

        whole = StableCF.from_points(points)
        rest = whole.subtract(whole.copy())
        assert rest.n == 0
        assert rest.ssd == 0.0
