"""End-to-end integration tests of the full BIRCH pipeline."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.generator import (
    DatasetGenerator,
    GeneratorParams,
    InputOrder,
    Pattern,
)
from repro.datagen.presets import ds1, ds2
from repro.evaluation.matching import match_clusters
from repro.evaluation.quality import (
    cluster_cfs_from_labels,
    weighted_average_diameter,
)
from repro.workloads.base import base_birch_config


class TestQualityAgainstGroundTruth:
    def test_ds1_quality_near_ideal(self):
        """Table 4 shape: BIRCH's D on DS1 is close to the actual D."""
        dataset = ds1(scale=0.05)  # N = 5000
        config = base_birch_config(
            n_clusters=100, total_points_hint=dataset.n_points
        )
        result = Birch(config).fit(dataset.points)
        ideal = weighted_average_diameter(
            cluster_cfs_from_labels(dataset.points, dataset.labels, 100)
        )
        got = weighted_average_diameter([cf for cf in result.clusters if cf.n > 0])
        assert got < ideal * 1.35

    def test_ds1_centroids_match_actual(self):
        """Figure 6/7 shape: BIRCH centroids sit on the actual centres."""
        dataset = ds1(scale=0.05)
        config = base_birch_config(
            n_clusters=100, total_points_hint=dataset.n_points
        )
        result = Birch(config).fit(dataset.points)
        match = match_clusters(result.centroids, dataset.actual_centroids())
        # Grid spacing is ~5.7; matched centroids must be far closer.
        assert match.mean_centroid_distance < 1.0

    def test_ds2_sine_pattern(self):
        dataset = ds2(scale=0.05)
        config = base_birch_config(
            n_clusters=100, total_points_hint=dataset.n_points
        )
        result = Birch(config).fit(dataset.points)
        ideal = weighted_average_diameter(
            cluster_cfs_from_labels(dataset.points, dataset.labels, 100)
        )
        got = weighted_average_diameter([cf for cf in result.clusters if cf.n > 0])
        assert got < ideal * 1.35


class TestMemoryBoundedness:
    def test_memory_constant_while_n_grows(self):
        """The tree's page usage is bounded by M regardless of N."""
        peaks = []
        for n_per in (50, 100, 200):
            params = GeneratorParams(
                pattern=Pattern.GRID,
                n_clusters=25,
                n_low=n_per,
                n_high=n_per,
                r_low=1.0,
                r_high=1.0,
                seed=3,
            )
            dataset = DatasetGenerator().generate(params)
            config = BirchConfig(
                n_clusters=25,
                memory_bytes=16 * 1024,
                total_points_hint=dataset.n_points,
            )
            estimator = Birch(config)
            estimator.fit(dataset.points)
            assert estimator._budget is not None
            peaks.append(estimator._budget.peak_pages)
        capacity = 16 * 1024 // 1024
        height_allowance = 8
        for peak in peaks:
            assert peak <= capacity + height_allowance + 32

    def test_single_scan_of_data(self):
        """Phase 1 reads the data exactly once (the headline 1/O claim)."""
        dataset = ds1(scale=0.02)
        config = base_birch_config(
            n_clusters=100,
            total_points_hint=dataset.n_points,
            phase4_passes=0,
        )
        estimator = Birch(config)
        result = estimator.fit(dataset.points)
        assert result.io["data_scans"] == 1

    def test_phase4_adds_scans(self):
        dataset = ds1(scale=0.02)
        config = base_birch_config(
            n_clusters=100, total_points_hint=dataset.n_points, phase4_passes=2
        )
        result = Birch(config).fit(dataset.points)
        assert result.io["data_scans"] >= 2


class TestNoiseRobustness:
    def test_noise_spills_to_outliers(self):
        """With uniform noise, the outlier option catches stray points."""
        params = GeneratorParams(
            pattern=Pattern.GRID,
            n_clusters=9,
            n_low=150,
            n_high=150,
            r_low=0.5,
            r_high=0.5,
            grid_spacing=20.0,
            noise_fraction=0.1,
            seed=17,
        )
        dataset = DatasetGenerator().generate(params)
        config = BirchConfig(
            n_clusters=9,
            memory_bytes=6 * 1024,
            total_points_hint=dataset.n_points,
            phase4_passes=0,
        )
        estimator = Birch(config)
        result = estimator.fit(dataset.points)
        if result.rebuilds > 0:
            # Some of the sparse noise was flagged as outliers.
            assert len(result.outliers) > 0

    def test_quality_with_noise_still_reasonable(self):
        params = GeneratorParams(
            pattern=Pattern.GRID,
            n_clusters=9,
            n_low=200,
            n_high=200,
            r_low=0.5,
            r_high=0.5,
            grid_spacing=20.0,
            noise_fraction=0.05,
            seed=18,
        )
        dataset = DatasetGenerator().generate(params)
        config = BirchConfig(
            n_clusters=9,
            memory_bytes=16 * 1024,
            total_points_hint=dataset.n_points,
            phase4_passes=1,
            phase4_discard_outliers=True,
        )
        result = Birch(config).fit(dataset.points)
        match = match_clusters(
            result.centroids, dataset.actual_centroids()
        )
        assert match.mean_centroid_distance < 2.0
