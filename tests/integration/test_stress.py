"""Stress and failure-injection tests for the whole stack."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.features import CF
from repro.core.tree import CFTree, ThresholdKind
from repro.pagestore.page import PageLayout


class TestDegenerateData:
    def test_all_identical_points(self):
        points = np.tile([3.0, -2.0], (500, 1))
        result = Birch(BirchConfig(n_clusters=1)).fit(points)
        live = [cf for cf in result.clusters if cf.n > 0]
        assert len(live) == 1
        assert live[0].n == 500
        assert live[0].radius == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_heavy_data(self, rng):
        """Duplicates collapse into few entries even at T = 0.

        Greedy descent can split a duplicate group across two leaves
        when an intermediate summary misleads it, so allow a small
        margin over the 50 distinct locations.
        """
        unique = rng.normal(size=(50, 2))
        idx = rng.integers(0, 50, size=2000)
        points = unique[idx]
        estimator = Birch(BirchConfig(n_clusters=10, phase4_passes=0))
        estimator.partial_fit(points)
        assert estimator.tree.tree_stats().leaf_entry_count <= 100
        assert estimator.tree.points == 2000

    def test_one_dimensional_data(self, rng):
        points = np.concatenate(
            [rng.normal(c, 0.2, size=(100, 1)) for c in (0.0, 5.0, 10.0)]
        )
        result = Birch(BirchConfig(n_clusters=3)).fit(points)
        centroids = sorted(float(c[0]) for c in result.centroids)
        assert centroids == pytest.approx([0.0, 5.0, 10.0], abs=0.3)

    def test_two_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = Birch(BirchConfig(n_clusters=2)).fit(points)
        assert result.n_clusters == 2

    def test_single_point(self):
        result = Birch(BirchConfig(n_clusters=1)).fit(np.array([[1.0, 2.0]]))
        assert result.n_clusters == 1
        assert result.clusters[0].n == 1

    def test_extreme_coordinates(self, rng):
        """Large offsets stress the SS cancellation guards."""
        points = rng.normal(1e8, 0.5, size=(300, 2))
        estimator = Birch(BirchConfig(n_clusters=1, phase4_passes=0))
        estimator.partial_fit(points)
        estimator.tree.check_invariants()
        for cf in estimator.tree.leaf_entries():
            assert cf.radius >= 0.0
            assert np.isfinite(cf.diameter)

    def test_k_larger_than_distinct_points(self):
        points = np.tile([[0.0, 0.0], [5.0, 5.0]], (10, 1))
        result = Birch(BirchConfig(n_clusters=10)).fit(points)
        # Only two distinct locations exist; no crash, <= 10 clusters.
        assert result.n_clusters <= 10


class TestResourceExtremes:
    def test_minimal_memory_still_completes(self, rng):
        """Two pages of memory: constant rebuilding, correct output."""
        points = np.concatenate(
            [rng.normal(c, 0.3, size=(200, 2)) for c in ((0, 0), (20, 0))]
        )
        config = BirchConfig(
            n_clusters=2,
            memory_bytes=2 * 1024,
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 2
        assert result.rebuilds >= 1

    def test_zero_disk_disables_spills_gracefully(self, rng):
        points = rng.normal(size=(1000, 2)) * 30
        config = BirchConfig(
            n_clusters=4,
            memory_bytes=4 * 1024,
            disk_bytes=0,  # outlier disk full from the start
            total_points_hint=1000,
        )
        estimator = Birch(config)
        result = estimator.fit(points)
        # Nothing can spill, so everything stays in the tree.
        assert int(result.tree_stats["points"]) == 1000
        assert len(result.outliers) == 0

    def test_tiny_disk_triggers_reabsorption_cycles(self, rng):
        points = np.concatenate(
            [
                rng.normal(0, 0.5, size=(900, 2)),
                rng.uniform(-60, 60, size=(100, 2)),
            ]
        )
        config = BirchConfig(
            n_clusters=4,
            memory_bytes=4 * 1024,
            disk_bytes=8 * 32,  # eight outlier records
            total_points_hint=1000,
        )
        estimator = Birch(config)
        estimator.partial_fit(points)
        handler = estimator._outlier_handler
        assert handler is not None
        assert handler.pending <= 8
        on_disk = handler.pending_points
        assert estimator.tree.points + on_disk == 1000

    def test_huge_page_single_node_tree(self, rng):
        points = rng.normal(size=(200, 2)) * 10
        config = BirchConfig(
            n_clusters=3, page_size=64 * 1024, phase4_passes=0
        )
        estimator = Birch(config)
        estimator.partial_fit(points)
        stats = estimator.tree.tree_stats()
        assert stats.height == 1  # everything fits one huge leaf
        estimator.tree.check_invariants()


class TestRadiusThresholdPipeline:
    def test_full_pipeline_with_radius_threshold(self, rng):
        points = np.concatenate(
            [rng.normal(c, 0.4, size=(150, 2)) for c in ((0, 0), (12, 0))]
        )
        config = BirchConfig(
            n_clusters=2,
            threshold_kind=ThresholdKind.RADIUS,
            memory_bytes=4 * 1024,
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 2
        for c in ((0, 0), (12, 0)):
            nearest = np.linalg.norm(
                result.centroids - np.array(c), axis=1
            ).min()
            assert nearest < 0.5


class TestLongRunningStream:
    def test_many_small_batches(self, rng):
        """1,000 batches of 10 points: no leaks, exact conservation."""
        estimator = Birch(
            BirchConfig(n_clusters=5, memory_bytes=8 * 1024, phase4_passes=0)
        )
        total = 0
        for i in range(1000):
            batch = rng.normal(
                (i % 5) * 10.0, 0.5, size=(10, 2)
            )
            estimator.partial_fit(batch)
            total += 10
        handler = estimator._outlier_handler
        on_disk = handler.pending_points if handler else 0
        assert estimator.tree.points + on_disk == total
        estimator.tree.check_invariants()

    def test_interleaved_absorb_and_rebuild(self, rng):
        """try_absorb_cf (used by re-absorption) interleaved with inserts
        keeps parents consistent across rebuilds."""
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.5)
        for i in range(500):
            tree.insert_point(rng.normal(size=2) * 5)
            if i % 50 == 49:
                tree.try_absorb_cf(CF.from_point(rng.normal(size=2) * 5))
        tree.check_invariants()
