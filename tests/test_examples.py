"""Smoke tests: the example scripts run end to end.

Only the fast examples run here (the image and comparison examples take
minutes by design); each is executed as ``__main__`` via runpy so the
scripts stay genuinely runnable files, not importable-only modules.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "clustered 1200 points into 3 clusters" in out
        assert "true centers" in out

    def test_diameter_driven(self, capsys):
        out = run_example("diameter_driven_clustering.py", capsys)
        assert "produced 7 clusters" in out
        assert "CF-tree diagnostics" in out

    def test_higher_dimensions(self, capsys):
        out = run_example("higher_dimensions.py", capsys)
        assert "d=16" in out
        assert "compression" in out

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "streaming_partial_fit.py",
            "image_filtering.py",
            "compare_clarans.py",
            "higher_dimensions.py",
            "diameter_driven_clustering.py",
        ],
    )
    def test_every_example_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
