"""The ``serve`` subcommand and frozen-artifact ``inspect`` support."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.serve import FrozenModel

pytestmark = pytest.mark.serve


@pytest.fixture
def checkpoint(tmp_path, rng):
    points = np.concatenate(
        [rng.normal(c, 0.4, size=(200, 2)) for c in ((0, 0), (10, 0), (0, 10))]
    )
    estimator = Birch(
        BirchConfig(n_clusters=3, memory_bytes=256 * 1024, phase4_passes=0)
    )
    estimator.partial_fit(points)
    path = tmp_path / "fit.ckpt"
    estimator.checkpoint(path)
    estimator.close()
    return path, points


@pytest.fixture
def artifact(checkpoint, tmp_path):
    ckpt, points = checkpoint
    out = tmp_path / "model.frz"
    assert main(["serve", "compile", str(ckpt), str(out)]) == 0
    return out, points


class TestServeCompile:
    def test_compile_reports_model_shape(self, checkpoint, tmp_path, capsys):
        ckpt, _ = checkpoint
        out = tmp_path / "model.frz"
        assert main(["serve", "compile", str(ckpt), str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "3 centroids" in stdout
        assert "payload sha256" in stdout
        assert out.exists()

    def test_no_index_flag(self, checkpoint, tmp_path):
        ckpt, _ = checkpoint
        out = tmp_path / "flat.frz"
        assert main(["serve", "compile", str(ckpt), str(out), "--no-index"]) == 0
        assert FrozenModel.load(out).index is None

    def test_unreadable_source_exits_4(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"garbage")
        code = main(
            ["serve", "compile", str(bogus), str(tmp_path / "out.frz")]
        )
        assert code == 4

    def test_trace_writes_serve_events(self, checkpoint, tmp_path):
        ckpt, _ = checkpoint
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["serve", "compile", str(ckpt), str(tmp_path / "m.frz"),
             "--trace", str(trace)]
        ) == 0
        names = [
            json.loads(line).get("event") or json.loads(line).get("span")
            for line in trace.read_text().splitlines()
        ]
        assert any(n and n.startswith("serve.compile") for n in names)


class TestServeQuery:
    def test_query_writes_labels(self, artifact, tmp_path, capsys):
        frz, points = artifact
        queries = tmp_path / "queries.csv"
        np.savetxt(queries, points[::5], delimiter=",")
        labels_out = tmp_path / "labels.csv"
        code = main(
            ["serve", "query", str(frz), str(queries), "--out", str(labels_out)]
        )
        assert code == 0
        labels = np.loadtxt(labels_out, dtype=np.int64)
        expected = FrozenModel.load(frz).predict(points[::5])
        assert np.array_equal(labels, expected)

    def test_brute_matches_default(self, artifact, tmp_path):
        frz, points = artifact
        queries = tmp_path / "queries.csv"
        np.savetxt(queries, points[::5], delimiter=",")
        out_a = tmp_path / "a.csv"
        out_b = tmp_path / "b.csv"
        assert main(["serve", "query", str(frz), str(queries), "--out", str(out_a)]) == 0
        assert main(
            ["serve", "query", str(frz), str(queries), "--brute", "--out", str(out_b)]
        ) == 0
        assert np.array_equal(
            np.loadtxt(out_a, dtype=np.int64), np.loadtxt(out_b, dtype=np.int64)
        )

    def test_corrupt_artifact_exits_5_with_verify(self, artifact, tmp_path):
        frz, points = artifact
        raw = bytearray(frz.read_bytes())
        raw[-1] ^= 0xFF
        frz.write_bytes(bytes(raw))
        queries = tmp_path / "queries.csv"
        np.savetxt(queries, points[:10], delimiter=",")
        assert main(["serve", "query", str(frz), str(queries), "--verify"]) == 5


class TestServeBench:
    def test_bench_prints_qps(self, artifact, capsys):
        frz, _ = artifact
        code = main(
            ["serve", "bench", str(frz), "--queries", "2000",
             "--batch-size", "512", "--repeats", "1"]
        )
        assert code == 0
        assert "QPS" in capsys.readouterr().out


class TestInspectFrozen:
    def test_inspect_recognises_frozen_artifact(self, artifact, capsys):
        frz, _ = artifact
        assert main(["inspect", str(frz)]) == 0
        stdout = capsys.readouterr().out
        assert "frozen model" in stdout
        assert "3 centroids" in stdout
        assert "d=2" in stdout
        assert "compiled from checkpoint" in stdout

    def test_inspect_unreadable_exits_4(self, tmp_path):
        missing = tmp_path / "absent.frz"
        assert main(["inspect", str(missing)]) == 4

    def test_inspect_truncated_exits_4(self, artifact, tmp_path):
        frz, _ = artifact
        stub = tmp_path / "stub.frz"
        stub.write_bytes(frz.read_bytes()[:10])
        assert main(["inspect", str(stub)]) == 4
