"""Pruned candidate index: exactness, tie parity, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.index import PrunedIndex, build_index
from repro.serve.kernel import nearest_centroids, sq_norms

pytestmark = pytest.mark.serve


def _clustered(rng, k: int, d: int, n: int, jitter: float = 0.5):
    centroids = rng.normal(size=(k, d)) * 20.0
    picks = rng.integers(0, k, n)
    queries = centroids[picks] + rng.normal(size=(n, d)) * jitter
    return centroids, queries


class TestBuildIndex:
    def test_none_below_minimum(self, rng):
        assert build_index(rng.normal(size=(15, 2))) is None
        assert build_index(rng.normal(size=(16, 2))) is not None

    def test_groups_partition_all_centroids(self, rng):
        centroids = rng.normal(size=(100, 3))
        index = build_index(centroids)
        seen = np.concatenate(
            [index.members(g) for g in range(index.n_groups)]
        )
        assert np.array_equal(np.sort(seen), np.arange(100))

    def test_no_empty_groups(self, rng):
        # Heavily duplicated centroids force k-means groups to collapse;
        # the builder must compact the survivors.
        centroids = np.repeat(rng.normal(size=(4, 2)) * 10, 8, axis=0)
        index = build_index(centroids)
        assert index is not None
        for g in range(index.n_groups):
            assert index.members(g).size > 0


class TestAssignExactness:
    @pytest.mark.parametrize("k,d", [(64, 2), (100, 8), (256, 16)])
    def test_byte_identical_to_brute(self, rng, k, d):
        centroids, queries = _clustered(rng, k, d, 5000)
        index = build_index(centroids)
        norms = sq_norms(centroids)
        assert np.array_equal(
            index.assign(queries, centroids, norms),
            nearest_centroids(queries, centroids),
        )

    def test_uniform_queries_still_exact(self, rng):
        # Worst case for the bound: queries unrelated to the centroids.
        centroids = rng.normal(size=(80, 4)) * 3
        queries = rng.uniform(-20, 20, size=(4000, 4))
        index = build_index(centroids)
        assert np.array_equal(
            index.assign(queries, centroids, sq_norms(centroids)),
            nearest_centroids(queries, centroids),
        )

    def test_tie_parity_with_duplicated_centroids(self, rng):
        base = rng.normal(size=(24, 3)) * 10
        centroids = np.vstack([base, base])  # exact duplicates
        queries = base[rng.integers(0, 24, 2000)] + rng.normal(
            size=(2000, 3)
        )
        index = build_index(centroids)
        labels = index.assign(queries, centroids, sq_norms(centroids))
        brute = nearest_centroids(queries, centroids)
        assert np.array_equal(labels, brute)
        assert labels.max() < 24  # lowest index wins on exact ties

    def test_stats_report_pruning(self, rng):
        centroids, queries = _clustered(rng, 256, 2, 4000, jitter=0.2)
        index = build_index(centroids)
        stats: dict = {}
        index.assign(queries, centroids, sq_norms(centroids), stats=stats)
        assert 0 < stats["candidates"] < queries.shape[0] * 256


class TestSerialization:
    def test_round_trip_preserves_assignments(self, rng):
        centroids, queries = _clustered(rng, 64, 3, 2000)
        index = build_index(centroids)
        arrays = index.to_arrays()
        assert all(name.startswith("index_") for name in arrays)
        restored = PrunedIndex.from_arrays(
            {k: np.array(v) for k, v in arrays.items()}
        )
        norms = sq_norms(centroids)
        assert np.array_equal(
            restored.assign(queries, centroids, norms),
            index.assign(queries, centroids, norms),
        )
