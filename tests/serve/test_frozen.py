"""FrozenModel parity with the live estimator, compile paths, mmap sharing."""

from __future__ import annotations

import hashlib
import io
import json
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.serialization import save_result
from repro.datagen.presets import ds1, ds2
from repro.errors import ArchiveError, NotFittedError
from repro.serve import FrozenModel, compile_model

pytestmark = pytest.mark.serve

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _config(backend: str, **overrides) -> BirchConfig:
    defaults = dict(
        n_clusters=8,
        memory_bytes=256 * 1024,
        cf_backend=backend,
        initial_threshold=1.0,
        phase4_passes=0,
    )
    defaults.update(overrides)
    return BirchConfig(**defaults)


def _fitted(points: np.ndarray, backend: str, **overrides) -> Birch:
    estimator = Birch(_config(backend, **overrides))
    estimator.fit(points)
    return estimator


@pytest.fixture
def small_fit(rng):
    points = np.concatenate(
        [rng.normal(c, 0.5, size=(150, 2)) for c in
         ((0, 0), (8, 0), (0, 8), (8, 8), (4, 4), (12, 4), (4, 12), (-4, 4))]
    )
    return points


class TestParityWithEstimator:
    @pytest.mark.parametrize("preset", [ds1, ds2])
    @pytest.mark.parametrize("backend", ["classic", "stable"])
    def test_preset_parity(self, preset, backend):
        dataset = preset(scale=0.02)
        estimator = _fitted(
            dataset.points, backend, n_clusters=100, memory_bytes=4 << 20
        )
        frozen = FrozenModel.from_estimator(estimator)
        queries = dataset.points[::3]
        expected = estimator.predict(queries)
        assert np.array_equal(frozen.predict(queries), expected)
        if frozen.index is not None:
            assert np.array_equal(
                frozen.predict(queries, pruned=True), expected
            )
        estimator.close()

    def test_save_load_round_trip(self, small_fit, tmp_path):
        estimator = _fitted(small_fit, "stable")
        frozen = FrozenModel.from_estimator(estimator)
        digest = frozen.save(tmp_path / "m.frz")
        loaded = FrozenModel.load(tmp_path / "m.frz")
        assert loaded.metadata["artifact"]["payload_sha256"] == digest
        queries = small_fit[::2]
        assert np.array_equal(
            loaded.predict(queries), estimator.predict(queries)
        )
        estimator.close()

    def test_loaded_arrays_are_read_only_views(self, small_fit, tmp_path):
        estimator = _fitted(small_fit, "stable")
        FrozenModel.from_estimator(estimator).save(tmp_path / "m.frz")
        estimator.close()
        loaded = FrozenModel.load(tmp_path / "m.frz")
        # np.asarray strips the memmap subclass but keeps the zero-copy
        # read-only view: nothing here may be writable or own its data.
        for name in ("centroids", "centroid_sq_norms", "radii", "weights"):
            arr = getattr(loaded, name)
            assert not arr.flags.writeable
            assert arr.base is not None

    def test_transform_and_score(self, small_fit):
        estimator = _fitted(small_fit, "stable")
        frozen = FrozenModel.from_estimator(estimator)
        queries = small_fit[:50]
        distances = frozen.transform(queries)
        assert distances.shape == (50, frozen.n_clusters)
        assert np.array_equal(
            frozen.label_remap[np.argmin(distances, axis=1)],
            frozen.predict(queries),
        )
        assert frozen.score(queries) <= 0.0
        estimator.close()

    def test_unfitted_estimator_raises(self):
        with pytest.raises(NotFittedError):
            FrozenModel.from_estimator(Birch(_config("stable")))


class TestCompileSources:
    def test_compile_from_checkpoint_matches_finalize(
        self, small_fit, tmp_path
    ):
        estimator = Birch(_config("stable"))
        estimator.partial_fit(small_fit)
        ckpt = tmp_path / "fit.ckpt"
        estimator.checkpoint(ckpt)

        model = compile_model(ckpt)
        resumed = Birch.resume(ckpt)
        resumed.finalize()
        expected = resumed.predict(small_fit[::2])
        assert np.array_equal(model.predict(small_fit[::2]), expected)
        assert model.metadata["source"]["kind"] == "checkpoint"
        assert model.metadata["source"]["sha256"] == hashlib.sha256(
            ckpt.read_bytes()
        ).hexdigest()
        resumed.close()
        estimator.close()

    def test_compile_from_v1_checkpoint(self, small_fit, tmp_path):
        # Forge a genuine version-1 archive (no evolve payload) from a
        # v2 snapshot, same as the checkpoint compatibility tests.
        estimator = Birch(_config("stable"))
        estimator.partial_fit(small_fit)
        ckpt = tmp_path / "v1.ckpt"
        estimator.checkpoint(ckpt)
        raw = ckpt.read_bytes()
        with np.load(io.BytesIO(raw[52:]), allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {
                key: data[key]
                for key in data.files
                if key != "meta" and not key.startswith("evolve_")
            }
        meta.pop("evolve", None)
        meta["format"] = 1
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        payload = buffer.getvalue()
        packed = struct.pack("<I", 1)
        length = struct.pack("<Q", len(payload))
        digest = hashlib.sha256(packed + length + payload).digest()
        ckpt.write_bytes(b"BIRCHCKP" + packed + digest + length + payload)

        model = compile_model(ckpt)
        resumed = Birch.resume(ckpt)
        resumed.finalize()
        assert np.array_equal(
            model.predict(small_fit[::2]), resumed.predict(small_fit[::2])
        )
        resumed.close()
        estimator.close()

    def test_compile_from_result_archive(self, small_fit, tmp_path):
        estimator = _fitted(small_fit, "classic")
        archive = tmp_path / "result.npz"
        save_result(archive, estimator.result)
        model = compile_model(archive)
        assert model.metadata["source"]["kind"] == "result-archive"
        assert np.array_equal(
            model.predict(small_fit[::2]), estimator.predict(small_fit[::2])
        )
        estimator.close()

    def test_compile_of_frozen_artifact_is_rejected(
        self, small_fit, tmp_path
    ):
        estimator = _fitted(small_fit, "stable")
        frz = tmp_path / "m.frz"
        FrozenModel.from_estimator(estimator).save(frz)
        estimator.close()
        with pytest.raises(ArchiveError, match="already a frozen-model"):
            compile_model(frz)

    def test_compile_of_garbage_is_archive_error(self, tmp_path):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"not a model at all")
        with pytest.raises(ArchiveError):
            compile_model(bogus)


class TestEvolvedModels:
    def test_predict_after_decay_and_forget(self, rng, tmp_path):
        config = BirchConfig(
            n_clusters=4,
            memory_bytes=256 * 1024,
            cf_backend="stable",
            initial_threshold=1.0,
            phase4_passes=0,
            decay_half_life=3.0,
            epoch_buckets=4,
        )
        estimator = Birch(config)
        for i in range(6):
            estimator.partial_fit(
                rng.normal((i % 3 * 6, 0), 0.4, size=(120, 2))
            )
        estimator.forget_before(2)
        estimator.finalize()
        frozen = FrozenModel.from_estimator(estimator)
        # Decayed stable CFs carry fractional mass; it must survive
        # compilation as-is.
        assert np.all(frozen.weights > 0)
        assert not np.allclose(frozen.weights, np.round(frozen.weights))
        queries = rng.normal((6, 0), 2.0, size=(200, 2))
        assert np.array_equal(
            frozen.predict(queries), estimator.predict(queries)
        )
        path = tmp_path / "evolved.frz"
        frozen.save(path)
        assert np.array_equal(
            FrozenModel.load(path).predict(queries),
            estimator.predict(queries),
        )
        estimator.close()


class TestMultiProcessSharing:
    def test_two_processes_serve_one_artifact(self, small_fit, tmp_path):
        estimator = _fitted(small_fit, "stable")
        frozen = FrozenModel.from_estimator(estimator)
        path = tmp_path / "shared.frz"
        frozen.save(path)
        queries = small_fit[::2]
        qpath = tmp_path / "queries.npy"
        np.save(qpath, queries)
        expected = frozen.predict(queries)
        estimator.close()

        script = (
            "import sys, numpy as np\n"
            "from repro.serve import FrozenModel\n"
            "m = FrozenModel.load(sys.argv[1])\n"
            "# mmap'd read path: views, never private copies\n"
            "assert not m.centroids.flags.writeable\n"
            "assert m.centroids.base is not None\n"
            "labels = m.predict(np.load(sys.argv[2]))\n"
            "sys.stdout.write(','.join(map(str, labels)))\n"
        )
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(path), str(qpath)],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": _SRC},
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0] == ",".join(map(str, expected))
