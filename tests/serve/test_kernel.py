"""The shared nearest-centroid kernel: parity, ties, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.kernel import (
    default_chunk,
    nearest_centroids,
    pairwise_sq_dists,
    reduced_panel,
    sq_norms,
)

pytestmark = pytest.mark.serve


def _naive_labels(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d2, axis=1)


class TestNearestCentroids:
    @pytest.mark.parametrize("k,d", [(3, 1), (17, 2), (64, 8), (200, 16)])
    def test_matches_naive_broadcast(self, rng, k, d):
        centroids = rng.normal(size=(k, d)) * 5
        points = rng.normal(size=(3000, d)) * 5
        assert np.array_equal(
            nearest_centroids(points, centroids),
            _naive_labels(points, centroids),
        )

    def test_chunking_does_not_change_labels(self, rng):
        centroids = rng.normal(size=(20, 3))
        points = rng.normal(size=(1000, 3))
        whole = nearest_centroids(points, centroids)
        for chunk in (1, 7, 256, 4096):
            assert np.array_equal(
                nearest_centroids(points, centroids, chunk=chunk), whole
            )

    def test_ties_break_to_lowest_index(self, rng):
        centroids = rng.normal(size=(25, 4))
        doubled = np.vstack([centroids, centroids])
        points = rng.normal(size=(500, 4))
        labels = nearest_centroids(points, doubled)
        # Every point is exactly equidistant to centroid i and i+25;
        # the documented rule says the lower index must win, always.
        assert labels.max() < 25

    def test_exactly_equidistant_point(self):
        centroids = np.array([[0.0, 0.0], [8.0, 0.0]])
        query = np.array([[4.0, 0.0]])  # dead centre, exact in float64
        assert nearest_centroids(query, centroids)[0] == 0

    def test_returned_sq_dists_match_and_are_nonnegative(self, rng):
        centroids = rng.normal(size=(30, 5)) + 100.0  # offset → cancellation
        points = rng.normal(size=(800, 5)) + 100.0
        labels, d2 = nearest_centroids(points, centroids, return_sq_dists=True)
        expected = ((points - centroids[labels]) ** 2).sum(axis=1)
        assert np.all(d2 >= 0.0)
        np.testing.assert_allclose(d2, expected, atol=1e-7)

    def test_precomputed_norms_are_equivalent(self, rng):
        centroids = rng.normal(size=(12, 3))
        points = rng.normal(size=(100, 3))
        assert np.array_equal(
            nearest_centroids(points, centroids, sq_norms(centroids)),
            nearest_centroids(points, centroids),
        )

    def test_rejects_bad_shapes(self):
        good = np.zeros((4, 2))
        with pytest.raises(ValueError, match="2-d"):
            nearest_centroids(np.zeros(4), good)
        with pytest.raises(ValueError, match="empty"):
            nearest_centroids(good, np.zeros((0, 2)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            nearest_centroids(good, np.zeros((3, 5)))


class TestPanels:
    def test_reduced_panel_ranks_like_true_distances(self, rng):
        centroids = rng.normal(size=(40, 6))
        block = rng.normal(size=(64, 6))
        neg2t = np.ascontiguousarray(centroids.T) * -2.0
        r = reduced_panel(block, neg2t, sq_norms(centroids))
        full = pairwise_sq_dists(block, centroids)
        assert np.array_equal(np.argmin(r, axis=1), np.argmin(full, axis=1))
        # r differs from the true squared distance by exactly ||x||^2.
        np.testing.assert_allclose(
            r + sq_norms(block)[:, None], full, atol=1e-8
        )

    def test_pairwise_sq_dists_clamped_nonnegative(self, rng):
        base = rng.normal(size=(50, 4)) + 1e4  # huge offset → cancellation
        d2 = pairwise_sq_dists(base, base.copy())
        assert np.all(d2 >= 0.0)
        # Cancellation at this offset leaves O(1e-7) residue on the
        # diagonal; the clamp guarantees the sign, not exact zeros.
        assert np.allclose(np.diag(d2), 0.0, atol=1e-5)


class TestDefaultChunk:
    def test_bounds(self):
        assert default_chunk(1) == 8192
        assert default_chunk(100_000) == 256
        # 2 MiB panel budget / (8 bytes * K)
        assert default_chunk(512) == (2 << 20) // (8 * 512)
