"""BIRCHFRZ container integrity: sealing, tamper detection, mmap."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.errors import ArchiveError, ChecksumMismatchError
from repro.serve.artifact import (
    ARTIFACT_MAGIC,
    ARTIFACT_VERSION,
    load_artifact,
    read_artifact_header,
    write_artifact,
)

pytestmark = pytest.mark.serve


@pytest.fixture
def sealed(tmp_path, rng):
    arrays = {
        "centroids": rng.normal(size=(10, 3)),
        "weights": rng.uniform(1, 5, size=10),
        "label_remap": np.arange(10, dtype=np.int64),
    }
    path = tmp_path / "model.frz"
    digest = write_artifact(path, arrays, {"note": "test"})
    return path, arrays, digest


class TestRoundTrip:
    def test_arrays_and_metadata_survive(self, sealed):
        path, arrays, digest = sealed
        loaded, header = load_artifact(path, verify=True)
        assert header["version"] == ARTIFACT_VERSION
        assert header["payload_sha256"] == digest
        assert header["metadata"] == {"note": "test"}
        for name, value in arrays.items():
            np.testing.assert_array_equal(loaded[name], value)
            assert loaded[name].dtype == value.dtype

    def test_mmap_arrays_are_read_only_views(self, sealed):
        path, _, _ = sealed
        loaded, _ = load_artifact(path, mmap=True)
        for arr in loaded.values():
            assert isinstance(arr, np.memmap)
            assert not arr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                arr[...] = 0

    def test_private_copies_without_mmap(self, sealed):
        path, arrays, _ = sealed
        loaded, _ = load_artifact(path, mmap=False)
        for name in arrays:
            assert not isinstance(loaded[name], np.memmap)
            np.testing.assert_array_equal(loaded[name], arrays[name])

    def test_payload_is_aligned(self, sealed):
        path, _, _ = sealed
        header = read_artifact_header(path)
        for entry in header["arrays"]:
            assert entry["offset"] % 64 == 0

    def test_rewrite_is_deterministic(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(5, 2))}
        p1, p2 = tmp_path / "one.frz", tmp_path / "two.frz"
        d1 = write_artifact(p1, arrays, {"k": 1})
        d2 = write_artifact(p2, arrays, {"k": 1})
        assert d1 == d2
        assert p1.read_bytes() == p2.read_bytes()


class TestTamperDetection:
    def test_foreign_magic_is_archive_error(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"NOTAFRZ!" + b"\x00" * 64)
        with pytest.raises(ArchiveError, match="bad magic"):
            read_artifact_header(path)

    def test_truncation_is_archive_error(self, sealed):
        path, _, _ = sealed
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ArchiveError, match="truncated"):
            read_artifact_header(path)

    def test_unknown_version_is_archive_error(self, sealed):
        path, _, _ = sealed
        raw = bytearray(path.read_bytes())
        raw[8:12] = struct.pack("<I", ARTIFACT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(ArchiveError, match="version"):
            read_artifact_header(path)

    def test_header_corruption_always_detected(self, sealed):
        # The header digest is verified on every open, even verify=False.
        path, _, _ = sealed
        raw = bytearray(path.read_bytes())
        offset = len(ARTIFACT_MAGIC) + 4 + 32 + 8  # first header byte
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumMismatchError):
            load_artifact(path)

    def test_payload_corruption_caught_by_verify(self, sealed):
        path, _, _ = sealed
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte inside the last array
        path.write_bytes(bytes(raw))
        load_artifact(path)  # lazy open does not touch the payload
        with pytest.raises(ChecksumMismatchError):
            load_artifact(path, verify=True)

    def test_missing_file_is_archive_error(self, tmp_path):
        with pytest.raises(ArchiveError):
            read_artifact_header(tmp_path / "absent.frz")
