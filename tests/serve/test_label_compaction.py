"""Label compaction when Phase 4 refinement empties a cluster.

A dominated Phase 3 seed — one no point is nearest to — comes out of
refinement as a zero-mass CF, leaving a hole in the label space
(labels ``{0, 2}`` from three seeds).  A frozen model compiled from
such a result must drop the empty row and emit dense consecutive
labels, recording the original cluster count and the dropped ids in
``metadata["compaction"]``; results without empty clusters must pass
through byte-identical (no metadata key, same arrays).
"""

import numpy as np
import pytest

from repro.core.refinement import refine
from repro.serve import FrozenModel, compile_model

pytestmark = pytest.mark.serve


class _RefinedResult:
    """The BirchResult surface that compilation and archiving read."""

    def __init__(self, refinement):
        self.centroids = refinement.centroids
        self.clusters = refinement.clusters
        self.labels = refinement.labels
        self.entry_labels = np.arange(len(refinement.clusters))
        self.final_threshold = 0.0
        self.rebuilds = 0
        self.io = {}
        self.tree_stats = {}


@pytest.fixture
def emptied_result():
    # Every point sits at x=0 or x=10; the middle seed loses all of
    # them on the first pass and its recomputed cluster is empty.
    points = np.vstack(
        [np.tile([0.0, 0.0], (40, 1)), np.tile([10.0, 0.0], (40, 1))]
    )
    seeds = np.array([[0.5, 0.0], [5.4, 0.0], [9.5, 0.0]])
    refinement = refine(points, seeds, passes=1)
    assert [cf.n for cf in refinement.clusters] == [40, 0, 40]
    assert set(np.unique(refinement.labels)) == {0, 2}  # the hole
    return points, _RefinedResult(refinement)


class TestCompaction:
    def test_from_result_emits_dense_labels(self, emptied_result):
        points, result = emptied_result
        model = FrozenModel.from_result(result)
        assert model.n_clusters == 2
        np.testing.assert_array_equal(
            model.label_remap, np.arange(2, dtype=np.int64)
        )
        labels = model.predict(points)
        assert set(np.unique(labels)) == {0, 1}
        # The left blob keeps label 0; the right blob's label 2
        # compacts to 1.
        assert labels[0] == 0 and labels[-1] == 1
        assert model.metadata["compaction"] == {
            "original_n_clusters": 3,
            "dropped_labels": [1],
        }
        assert float(model.weights.min()) > 0

    def test_artifact_round_trip_preserves_compaction(
        self, emptied_result, tmp_path
    ):
        points, result = emptied_result
        model = FrozenModel.from_result(result)
        path = tmp_path / "compacted.frz"
        model.save(path)
        loaded = FrozenModel.load(path, verify=True)
        assert loaded.n_clusters == 2
        assert loaded.metadata["compaction"]["dropped_labels"] == [1]
        np.testing.assert_array_equal(
            loaded.predict(points), model.predict(points)
        )

    def test_compile_model_archive_path_compacts(
        self, emptied_result, tmp_path
    ):
        from repro.core.serialization import save_result

        points, result = emptied_result
        archive = tmp_path / "refined.npz"
        save_result(archive, result)
        model = compile_model(archive)
        assert model.n_clusters == 2
        assert model.metadata["compaction"]["original_n_clusters"] == 3
        assert set(np.unique(model.predict(points))) == {0, 1}

    def test_no_compaction_without_empty_clusters(self):
        points = np.vstack(
            [np.tile([0.0, 0.0], (30, 1)), np.tile([10.0, 0.0], (30, 1))]
        )
        seeds = np.array([[0.5, 0.0], [9.5, 0.0]])
        result = _RefinedResult(refine(points, seeds, passes=1))
        model = FrozenModel.from_result(result)
        assert model.n_clusters == 2
        assert "compaction" not in model.metadata
        np.testing.assert_array_equal(
            model.predict(points), result.labels
        )
