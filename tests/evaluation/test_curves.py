"""Tests for the power-law curve fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.curves import fit_power_law


class TestFit:
    def test_exact_linear(self):
        xs = np.array([100.0, 200.0, 400.0, 800.0])
        fit = fit_power_law(xs, 3.0 * xs)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.is_near_linear

    def test_exact_quadratic(self):
        xs = np.array([10.0, 20.0, 40.0])
        fit = fit_power_law(xs, 0.5 * xs**2)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert not fit.is_near_linear

    def test_predict(self):
        xs = np.array([1.0, 2.0, 4.0])
        fit = fit_power_law(xs, 2.0 * xs)
        assert fit.predict(8.0) == pytest.approx(16.0, rel=1e-9)

    def test_noisy_fit_r_squared_below_one(self, rng):
        xs = np.linspace(10, 1000, 20)
        ys = 2.0 * xs * np.exp(rng.normal(0, 0.1, 20))
        fit = fit_power_law(xs, ys)
        assert 0.8 < fit.r_squared < 1.0
        assert fit.exponent == pytest.approx(1.0, abs=0.2)

    @given(
        exponent=st.floats(min_value=0.2, max_value=3.0),
        coefficient=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_known_law(self, exponent, coefficient):
        xs = np.array([10.0, 50.0, 250.0, 1250.0])
        ys = coefficient * xs**exponent
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)


class TestValidation:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            fit_power_law([-1.0, 2.0], [1.0, 1.0])

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([5.0, 5.0], [1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, 2.0])
