"""Tests for the table formatter."""

import pytest

from repro.evaluation.report import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(
            ["dataset", "time", "D"],
            [["DS1", 47.1, 1.87], ["DS2", 47.5, 1.99]],
        )
        lines = out.split("\n")
        assert "dataset" in lines[0]
        assert "-" in lines[1]
        assert "DS1" in lines[2]
        assert "47.10" in lines[2]

    def test_title(self):
        out = format_table(["a"], [["x"]], title="Table 4")
        assert out.split("\n")[0] == "Table 4"

    def test_columns_aligned(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.split("\n")
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_float_format(self):
        out = format_table(["x"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in out

    def test_integers_not_float_formatted(self):
        out = format_table(["n"], [[100]])
        assert "100" in out
        assert "100.00" not in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
