"""Tests for found-vs-actual cluster matching."""

import numpy as np
import pytest

from repro.evaluation.matching import match_clusters


class TestAssignment:
    def test_identity_match(self):
        centroids = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        match = match_clusters(centroids, centroids)
        assert np.array_equal(np.sort(match.assignment), [0, 1, 2])
        assert match.mean_centroid_distance == pytest.approx(0.0)
        assert match.max_centroid_distance == pytest.approx(0.0)

    def test_permuted_match(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        found = actual[[2, 0, 1]]
        match = match_clusters(found, actual)
        assert match.assignment.tolist() == [2, 0, 1]
        assert match.mean_centroid_distance == pytest.approx(0.0)

    def test_displacement_measured(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0]])
        found = actual + np.array([[0.3, 0.4], [0.0, 0.0]])
        match = match_clusters(found, actual)
        assert match.max_centroid_distance == pytest.approx(0.5)
        assert match.mean_centroid_distance == pytest.approx(0.25)

    def test_unequal_counts_leave_unmatched(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0]])
        found = np.array([[0.0, 0.0], [10.0, 0.0], [50.0, 50.0]])
        match = match_clusters(found, actual)
        assert (match.assignment == -1).sum() == 1
        assert match.centroid_distances.shape == (2,)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            match_clusters(np.empty((0, 2)), np.ones((1, 2)))


class TestStatistics:
    def test_radius_ratios(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0]])
        match = match_clusters(
            actual,
            actual,
            found_radii=np.array([2.0, 3.0]),
            actual_radii=np.array([1.0, 2.0]),
        )
        assert sorted(match.radius_ratios.tolist()) == [1.5, 2.0]
        assert match.mean_radius_ratio == pytest.approx(1.75)

    def test_zero_actual_radius_skipped(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0]])
        match = match_clusters(
            actual,
            actual,
            found_radii=np.array([2.0, 3.0]),
            actual_radii=np.array([0.0, 2.0]),
        )
        assert match.radius_ratios.shape == (1,)

    def test_count_deviation(self):
        actual = np.array([[0.0, 0.0], [10.0, 0.0]])
        match = match_clusters(
            actual,
            actual,
            found_counts=np.array([90, 110]),
            actual_counts=np.array([100, 100]),
        )
        assert match.mean_count_deviation == pytest.approx(0.1)

    def test_stats_empty_without_inputs(self):
        actual = np.array([[0.0, 0.0]])
        match = match_clusters(actual, actual)
        assert match.radius_ratios.size == 0
        assert match.count_deviation.size == 0
        assert match.mean_radius_ratio == 0.0
