"""Tests for the quality measurements."""

import numpy as np
import pytest

from repro.core.features import CF
from repro.evaluation.quality import (
    cluster_cfs_from_labels,
    total_cost,
    weighted_average_diameter,
    weighted_average_radius,
)


class TestWeightedAverages:
    def test_weighting_by_point_count(self, rng):
        tight = CF.from_points(rng.normal(0, 0.1, size=(1000, 2)))
        loose = CF.from_points(rng.normal(0, 5.0, size=(10, 2)))
        d = weighted_average_diameter([tight, loose])
        # The huge tight cluster dominates the average.
        assert d < loose.diameter / 2
        assert d > tight.diameter / 2

    def test_single_cluster(self, rng):
        cf = CF.from_points(rng.normal(size=(50, 2)))
        assert weighted_average_diameter([cf]) == pytest.approx(cf.diameter)
        assert weighted_average_radius([cf]) == pytest.approx(cf.radius)

    def test_empty_clusters_skipped(self, rng):
        cf = CF.from_points(rng.normal(size=(50, 2)))
        with_empty = weighted_average_diameter([cf, CF.empty(2)])
        assert with_empty == pytest.approx(cf.diameter)

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_average_diameter([CF.empty(2)])
        with pytest.raises(ValueError):
            weighted_average_radius([])

    def test_singletons_contribute_zero_diameter(self):
        single = CF.from_point(np.zeros(2))
        assert weighted_average_diameter([single]) == 0.0

    def test_radius_smaller_than_diameter(self, rng):
        cfs = [CF.from_points(rng.normal(size=(30, 2))) for _ in range(3)]
        assert weighted_average_radius(cfs) < weighted_average_diameter(cfs)


class TestClusterCFsFromLabels:
    def test_partition_reconstruction(self, blob_points, blob_labels):
        cfs = cluster_cfs_from_labels(blob_points, blob_labels, 3)
        assert [cf.n for cf in cfs] == [50, 50, 50]
        for c in range(3):
            expected = blob_points[blob_labels == c].mean(axis=0)
            assert np.allclose(cfs[c].centroid, expected)

    def test_discarded_labels_excluded(self, blob_points, blob_labels):
        labels = blob_labels.copy()
        labels[:10] = -1
        cfs = cluster_cfs_from_labels(blob_points, labels, 3)
        assert cfs[0].n == 40

    def test_inferred_k(self, blob_points, blob_labels):
        cfs = cluster_cfs_from_labels(blob_points, blob_labels)
        assert len(cfs) == 3

    def test_empty_cluster_produces_empty_cf(self, blob_points, blob_labels):
        cfs = cluster_cfs_from_labels(blob_points, blob_labels, 5)
        assert cfs[3].n == 0
        assert cfs[4].n == 0

    def test_length_mismatch_rejected(self, blob_points):
        with pytest.raises(ValueError):
            cluster_cfs_from_labels(blob_points, np.zeros(3, dtype=int))


class TestTotalCost:
    def test_zero_for_points_on_centroids(self):
        centroids = np.array([[0.0, 0.0], [5.0, 5.0]])
        points = centroids[np.array([0, 1, 0])]
        labels = np.array([0, 1, 0])
        assert total_cost(points, centroids, labels) == pytest.approx(0.0)

    def test_manual_computation(self):
        centroids = np.array([[0.0, 0.0]])
        points = np.array([[3.0, 4.0], [0.0, 1.0]])
        labels = np.array([0, 0])
        assert total_cost(points, centroids, labels) == pytest.approx(6.0)

    def test_discarded_points_skipped(self):
        centroids = np.array([[0.0, 0.0]])
        points = np.array([[3.0, 4.0], [100.0, 0.0]])
        labels = np.array([0, -1])
        assert total_cost(points, centroids, labels) == pytest.approx(5.0)

    def test_all_discarded(self):
        centroids = np.array([[0.0, 0.0]])
        points = np.array([[1.0, 1.0]])
        assert total_cost(points, centroids, np.array([-1])) == 0.0
