"""Tests for the external label-agreement measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.labels import (
    adjusted_rand_index,
    contingency_table,
    purity,
    rand_index,
)

label_vectors = st.lists(st.integers(0, 4), min_size=2, max_size=60)


class TestContingency:
    def test_basic_counts(self):
        found = np.array([0, 0, 1, 1, 1])
        truth = np.array([0, 1, 1, 1, 1])
        table = contingency_table(found, truth)
        assert table.tolist() == [[1, 1], [0, 3]]

    def test_negative_labels_excluded(self):
        found = np.array([0, -1, 1])
        truth = np.array([0, 0, -1])
        table = contingency_table(found, truth)
        assert table.sum() == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_table(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


class TestPurity:
    def test_perfect_labelling(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert purity(labels, labels) == 1.0

    def test_permuted_labelling_still_pure(self):
        truth = np.array([0, 0, 1, 1])
        found = np.array([1, 1, 0, 0])
        assert purity(found, truth) == 1.0

    def test_half_mixed(self):
        truth = np.array([0, 0, 1, 1])
        found = np.array([0, 0, 0, 0])
        assert purity(found, truth) == 0.5

    def test_empty_after_exclusion(self):
        assert purity(np.array([-1, -1]), np.array([0, 1])) == 0.0


class TestRandIndices:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert rand_index(labels, labels) == pytest.approx(1.0)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabelled_partitions_identical(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        found = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(found, truth) == pytest.approx(1.0)

    def test_known_value(self):
        # Classic example: RI for these partitions is 0.6 (9/15... check
        # against the pair-counting definition directly).
        truth = np.array([0, 0, 0, 1, 1, 1])
        found = np.array([0, 0, 1, 1, 2, 2])
        n = len(truth)
        agree = 0
        pairs = 0
        for i in range(n):
            for j in range(i + 1, n):
                pairs += 1
                same_t = truth[i] == truth[j]
                same_f = found[i] == found[j]
                agree += same_t == same_f
        assert rand_index(found, truth) == pytest.approx(agree / pairs)

    def test_ari_near_zero_for_random_labels(self, rng):
        truth = rng.integers(0, 5, size=2000)
        found = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(found, truth)) < 0.05

    @given(labels=label_vectors)
    @settings(max_examples=40, deadline=None)
    def test_rand_bounds(self, labels):
        arr = np.array(labels)
        other = np.roll(arr, 1)
        ri = rand_index(arr, other)
        assert 0.0 <= ri <= 1.0

    @given(labels=label_vectors)
    @settings(max_examples=40, deadline=None)
    def test_ari_of_self_is_one(self, labels):
        arr = np.array(labels)
        assert adjusted_rand_index(arr, arr) == pytest.approx(1.0)

    def test_single_point(self):
        assert rand_index(np.array([0]), np.array([0])) == 1.0
        assert adjusted_rand_index(np.array([0]), np.array([1])) == 1.0
