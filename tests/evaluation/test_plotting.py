"""Tests for the ASCII visualisations."""

import numpy as np
import pytest

from repro.evaluation.plotting import ascii_clusters, ascii_scatter


class TestScatter:
    def test_dimensions(self, rng):
        out = ascii_scatter(rng.normal(size=(100, 2)), width=40, height=10)
        lines = out.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_dense_regions_marked(self, rng):
        points = np.concatenate(
            [rng.normal(0, 0.1, size=(200, 2)), rng.normal(10, 0.1, size=(200, 2))]
        )
        out = ascii_scatter(points, width=40, height=10)
        assert sum(1 for ch in out if ch not in " \n") >= 2

    def test_empty_input(self):
        out = ascii_scatter(np.empty((0, 2)), width=10, height=3)
        assert out == "\n".join(" " * 10 for _ in range(3))

    def test_single_point(self):
        out = ascii_scatter(np.array([[1.0, 1.0]]), width=10, height=3)
        assert sum(1 for ch in out if ch not in " \n") == 1

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            ascii_scatter(rng.normal(size=(5, 3)))


class TestClusters:
    def test_centroid_markers_present(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        radii = np.array([1.0, 2.0])
        out = ascii_clusters(centroids, radii, width=40, height=20)
        assert out.count("o") == 2

    def test_larger_radius_paints_more_cells(self):
        small = ascii_clusters(
            np.array([[0.0, 0.0], [100.0, 0.0]]),
            np.array([1.0, 1.0]),
            width=60,
            height=20,
        )
        large = ascii_clusters(
            np.array([[0.0, 0.0], [100.0, 0.0]]),
            np.array([20.0, 20.0]),
            width=60,
            height=20,
        )
        assert large.count("·") > small.count("·")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_clusters(np.zeros((2, 2)), np.zeros(3))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ascii_clusters(np.zeros((2, 3)), np.zeros(2))
