"""Tests for the Timer helper."""

import time

from repro.evaluation.timing import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0
