"""Tests for the repro.observe telemetry subsystem."""
