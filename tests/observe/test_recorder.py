"""Tests for the Recorder event bus and its lifecycle."""

import pytest

from repro.observe import (
    NULL_RECORDER,
    NullRecorder,
    ObserveConfig,
    Recorder,
    RingBufferSink,
    build_recorder,
    read_jsonl,
)
from repro.observe.recorder import TelemetrySnapshot

pytestmark = pytest.mark.observe


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestAggregation:
    def test_count_accumulates(self):
        rec = Recorder()
        rec.count("bulk.windows")
        rec.count("bulk.windows", 4)
        assert rec.counters == {"bulk.windows": 5}

    def test_gauge_is_last_value_wins(self):
        rec = Recorder()
        rec.gauge("tree.threshold", 0.5)
        rec.gauge("tree.threshold", 1.25)
        assert rec.gauges == {"tree.threshold": 1.25}

    def test_counters_property_is_a_copy(self):
        rec = Recorder()
        rec.count("a")
        rec.counters["a"] = 99
        assert rec.counters == {"a": 1}


class TestEventsAndSpans:
    def test_event_fans_out_to_sinks(self):
        ring = RingBufferSink(8)
        rec = Recorder([ring])
        rec.event("rebuild", old_threshold=0.0, new_threshold=1.0)
        [record] = ring.events()
        assert record["event"] == "rebuild"
        assert record["new_threshold"] == 1.0

    def test_event_name_is_positional_only(self):
        # Events may carry their own ``name`` field; the event's type
        # is the positional argument.
        ring = RingBufferSink(8)
        rec = Recorder([ring])
        rec.event("phase", name="phase1")
        [record] = ring.events()
        assert record == {"event": "phase", "name": "phase1"}

    def test_span_times_the_block(self):
        clock = FakeClock()
        ring = RingBufferSink(8)
        rec = Recorder([ring], clock=clock)
        with rec.span("checkpoint.write", path="x"):
            clock.now += 2.5
        [record] = ring.events()
        assert record["event"] == "checkpoint.write"
        assert record["seconds"] == pytest.approx(2.5)
        assert record["path"] == "x"

    def test_span_emits_on_exception(self):
        ring = RingBufferSink(8)
        rec = Recorder([ring])
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert [e["event"] for e in ring.events()] == ["doomed"]


class TestShardMerge:
    def test_merge_counts_is_additive(self):
        worker_a, worker_b, parent = Recorder(), Recorder(), Recorder()
        worker_a.count("bulk.windows", 3)
        worker_a.count("io.splits", 1)
        worker_b.count("bulk.windows", 2)
        parent.count("io.data_scans")
        parent.merge_counts(worker_a.state_dict())
        parent.merge_counts(worker_b.state_dict())
        assert parent.counters == {
            "bulk.windows": 5,
            "io.splits": 1,
            "io.data_scans": 1,
        }

    def test_state_dict_ships_only_counters(self):
        rec = Recorder([RingBufferSink(8)])
        rec.count("a")
        rec.gauge("g", 1.0)
        rec.event("e")
        assert rec.state_dict() == {"counters": {"a": 1}}

    def test_merge_tolerates_empty_payload(self):
        rec = Recorder()
        rec.merge_counts({})
        assert rec.counters == {}


class TestLifecycle:
    def test_snapshot_freezes_state(self):
        ring = RingBufferSink(8)
        rec = Recorder([ring])
        rec.count("a")
        rec.gauge("g", 2.0)
        rec.event("e", n=1)
        snap = rec.snapshot()
        rec.count("a")
        assert snap.counters == {"a": 1}
        assert snap.gauges == {"g": 2.0}
        assert [e["event"] for e in snap.events] == ["e"]

    def test_reset_run_zeroes_aggregates_and_ring(self):
        ring = RingBufferSink(8)
        rec = Recorder([ring])
        rec.count("a")
        rec.event("e")
        rec.reset_run()
        assert rec.counters == {}
        assert ring.events() == []

    def test_reset_run_keeps_journal_appending(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = ObserveConfig(trace_path=str(path))
        rec = build_recorder(config)
        rec.event("run.start")
        rec.reset_run()
        rec.event("run.start")
        rec.close()
        assert len(read_jsonl(path)) == 2

    def test_flush_writes_metrics_textfile(self, tmp_path):
        path = tmp_path / "metrics.prom"
        rec = Recorder(metrics_path=str(path))
        rec.count("bulk.windows", 7)
        rec.flush()
        assert "birch_bulk_windows 7" in path.read_text()

    def test_export_metrics_to_explicit_path(self, tmp_path):
        path = tmp_path / "explicit.prom"
        rec = Recorder()
        rec.count("a", 1)
        rec.export_metrics(str(path))
        assert "birch_a 1" in path.read_text()

    def test_no_metrics_path_means_no_file(self, tmp_path):
        rec = Recorder()
        rec.count("a")
        rec.flush()
        assert list(tmp_path.iterdir()) == []


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.count("a")
        rec.gauge("g", 1.0)
        rec.event("e")
        with rec.span("s"):
            pass
        assert rec.counters == {}
        assert rec.snapshot() == TelemetrySnapshot()

    def test_singleton_is_shared(self):
        assert build_recorder(None) is NULL_RECORDER
        assert build_recorder(ObserveConfig(enabled=False)) is NULL_RECORDER


class TestBuildRecorder:
    def test_default_config_gets_ring_only(self):
        rec = build_recorder(ObserveConfig())
        assert rec.enabled
        assert rec._ring is not None
        rec.event("e")
        assert len(rec.snapshot().events) == 1

    def test_trace_path_adds_journal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = build_recorder(ObserveConfig(trace_path=str(path)))
        rec.event("e")
        rec.close()
        assert [r["event"] for r in read_jsonl(path)] == ["e"]

    def test_ring_capacity_bounds_snapshot(self):
        rec = build_recorder(ObserveConfig(ring_capacity=2))
        for i in range(5):
            rec.event("e", i=i)
        assert [e["i"] for e in rec.snapshot().events] == [3, 4]


class TestObserveConfig:
    def test_rejects_nonpositive_ring_capacity(self):
        with pytest.raises(ValueError, match="ring_capacity"):
            ObserveConfig(ring_capacity=0)


class TestTelemetrySnapshot:
    def test_counter_and_events_named(self):
        snap = TelemetrySnapshot(
            counters={"a": 2},
            events=[{"event": "x"}, {"event": "y"}, {"event": "x"}],
        )
        assert snap.counter("a") == 2
        assert snap.counter("missing") == 0
        assert len(snap.events_named("x")) == 2

    def test_summary_lines_digest(self):
        snap = TelemetrySnapshot(
            counters={
                "bulk.windows": 10,
                "bulk.absorbed_rows": 75,
                "bulk.fallback_rows": 25,
                "io.page_reads": 4,
                "io.rebuilds": 2,
                "guardrails.rejected_points": 3,
                "watchdog.trips": 1,
            }
        )
        text = "\n".join(snap.summary_lines())
        assert "10 window(s)" in text
        assert "25.00%" in text
        assert "rebuilds: 2" in text
        assert "3 point(s) rejected" in text
        assert "watchdog: tripped" in text
