"""Tests for the telemetry sinks (ring buffer, JSONL journal, textfile)."""

import json

import pytest

from repro.observe.sinks import (
    JsonlSink,
    RingBufferSink,
    events_named,
    read_jsonl,
    render_metrics_textfile,
    write_metrics_textfile,
)

pytestmark = pytest.mark.observe


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.emit({"event": "tick", "i": i})
        assert len(ring) == 3
        assert [e["i"] for e in ring.events()] == [2, 3, 4]

    def test_events_returns_a_copy(self):
        ring = RingBufferSink(capacity=4)
        ring.emit({"event": "tick"})
        snapshot = ring.events()
        ring.emit({"event": "tock"})
        assert len(snapshot) == 1

    def test_clear_empties_buffer(self):
        ring = RingBufferSink(capacity=4)
        ring.emit({"event": "tick"})
        ring.clear()
        assert len(ring) == 0
        assert ring.events() == []


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"event": "a", "n": 1})
        sink.emit({"event": "b", "n": 2})
        sink.close()
        records = read_jsonl(str(path))
        assert [r["event"] for r in records] == ["a", "b"]
        assert all("ts" in r for r in records)

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(str(path))
        first.emit({"event": "run.start"})
        first.close()
        second = JsonlSink(str(path))
        second.emit({"event": "run.start"})
        second.close()
        assert len(read_jsonl(str(path))) == 2

    def test_flushes_per_line(self, tmp_path):
        # Crash-safety: every record must be on disk before the next
        # emit, without waiting for close().
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"event": "a"})
        assert len(read_jsonl(str(path))) == 1
        sink.close()

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"event": "a"})
        sink.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "tru')  # no newline: a torn final write
        records = read_jsonl(str(path))
        assert [r["event"] for r in records] == ["a"]

    def test_mid_journal_corruption_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"event": "a"}\n')
            fh.write("not json at all\n")
            fh.write('{"event": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(str(path))

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_jsonl(str(tmp_path / "absent.jsonl")) == []


class TestEventsNamed:
    def test_filters_by_event_name(self):
        records = [
            {"event": "phase", "name": "phase1"},
            {"event": "rebuild"},
            {"event": "phase", "name": "phase2"},
        ]
        assert len(events_named(records, "phase")) == 2
        assert events_named(records, "missing") == []


class TestMetricsTextfile:
    def test_renders_sorted_prometheus_lines(self):
        text = render_metrics_textfile(
            {"bulk.windows": 7, "io.page_reads": 3},
            {"tree.threshold": 1.5},
        )
        lines = text.splitlines()
        assert "# TYPE birch_bulk_windows counter" in lines
        assert "birch_bulk_windows 7" in lines
        assert "# TYPE birch_tree_threshold gauge" in lines
        assert "birch_tree_threshold 1.5" in lines
        # Counter names come out sorted.
        assert lines.index("birch_bulk_windows 7") < lines.index(
            "birch_io_page_reads 3"
        )
        assert text.endswith("\n")

    def test_sanitises_metric_names(self):
        text = render_metrics_textfile({"weird-name.with spaces": 1}, {})
        assert "birch_weird_name_with_spaces 1" in text

    def test_empty_state_renders_empty(self):
        assert render_metrics_textfile({}, {}) == ""

    def test_write_is_atomic_and_replaces(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics_textfile(str(path), {"a": 1}, {})
        write_metrics_textfile(str(path), {"a": 2}, {})
        content = path.read_text()
        assert "birch_a 2" in content
        assert "birch_a 1" not in content
        # No leftover temp files from the atomic-replace dance.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]
