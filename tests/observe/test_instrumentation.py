"""End-to-end telemetry tests: instrumentation must observe, not perturb."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.guardrails.supervisor import run_supervised
from repro.observe import ObserveConfig, Recorder, read_jsonl
from repro.pagestore.iostats import IOStats

pytestmark = pytest.mark.observe


@pytest.fixture
def points(rng) -> np.ndarray:
    centres = np.array([[0.0, 0.0], [6.0, 6.0], [12.0, 0.0]])
    return np.concatenate(
        [rng.normal(c, 0.4, size=(250, 2)) for c in centres]
    )


def _config(**overrides) -> BirchConfig:
    base = dict(n_clusters=3, total_points_hint=750, random_seed=7)
    base.update(overrides)
    return BirchConfig(**base)


def _fingerprint(result) -> tuple:
    """Everything clustering-relevant about a result, byte-exact."""
    return (
        result.centroids.tobytes(),
        None if result.labels is None else result.labels.tobytes(),
        result.entry_labels.tobytes(),
        result.final_threshold,
        result.rebuilds,
        tuple(sorted(result.io.items())),
        tuple((cf.n, cf.centroid.tobytes()) for cf in result.clusters),
    )


class TestByteIdenticalOutput:
    @pytest.mark.parametrize("backend", ["classic", "stable"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_telemetry_never_changes_output(self, points, backend, jobs):
        off = Birch(_config(cf_backend=backend, n_jobs=jobs)).fit(points)
        on = Birch(
            _config(cf_backend=backend, n_jobs=jobs, observe=ObserveConfig())
        ).fit(points)
        assert _fingerprint(on) == _fingerprint(off)
        assert off.telemetry is None
        assert on.telemetry is not None

    def test_supervised_on_off_identical(self, points):
        off = run_supervised(points, _config())
        on = run_supervised(points, _config(observe=ObserveConfig()))
        assert _fingerprint(on.result) == _fingerprint(off.result)
        assert off.report.telemetry is None
        assert on.report.telemetry is not None


class TestResultTelemetry:
    def test_counters_cover_the_hot_paths(self, points):
        result = Birch(_config(observe=ObserveConfig())).fit(points)
        snap = result.telemetry
        assert snap.counter("bulk.windows") > 0
        # Every row either absorbed by a window or fell back to scalar.
        assert (
            snap.counter("bulk.absorbed_rows")
            + snap.counter("bulk.fallback_rows")
            == points.shape[0]
        )
        assert snap.counter("io.data_scans") == result.io["data_scans"]
        assert snap.counter("io.splits") == result.io["splits"]
        assert snap.gauges["tree.threshold"] == result.final_threshold

    def test_run_events_bracket_the_phases(self, points):
        result = Birch(_config(observe=ObserveConfig())).fit(points)
        names = [e["event"] for e in result.telemetry.events]
        assert names[0] == "run.start"
        assert names[-1] == "run.end"
        assert names.count("phase") == 4
        phase_names = [
            e["name"] for e in result.telemetry.events_named("phase")
        ]
        assert phase_names == ["phase1", "phase2", "phase3", "phase4"]

    def test_sharded_fit_merges_worker_counters(self, points):
        serial = Birch(_config(observe=ObserveConfig())).fit(points)
        sharded = Birch(_config(n_jobs=2, observe=ObserveConfig())).fit(points)
        # Workers count their shard's windows; the parent merges them,
        # so the sharded run still accounts for every row.
        assert (
            sharded.telemetry.counter("bulk.absorbed_rows")
            + sharded.telemetry.counter("bulk.fallback_rows")
            == points.shape[0]
        )
        assert serial.telemetry.counter("io.data_scans") == \
            sharded.telemetry.counter("io.data_scans")

    def test_rebuild_events_track_threshold_growth(self, points):
        config = _config(
            memory_bytes=8 * 1024, observe=ObserveConfig(ring_capacity=4096)
        )
        result = Birch(config).fit(points)
        assert result.rebuilds > 0
        rebuilds = result.telemetry.events_named("rebuild")
        assert len(rebuilds) == result.telemetry.counter("io.rebuilds")
        for event in rebuilds:
            assert event["new_threshold"] > event["old_threshold"]
            assert event["nodes_before"] >= event["nodes_after"]
        triggers = result.telemetry.events_named("rebuild.trigger")
        assert triggers and all(
            e["reason"] in ("budget", "coarsen") for e in triggers
        )


class TestSinksWiring:
    def test_trace_journal_written(self, points, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = _config(observe=ObserveConfig(trace_path=str(path)))
        Birch(config).fit(points)
        records = read_jsonl(path)
        names = [r["event"] for r in records]
        assert "run.start" in names and "run.end" in names
        assert all("ts" in r for r in records)

    def test_metrics_textfile_written_on_flush(self, points, tmp_path):
        path = tmp_path / "metrics.prom"
        config = _config(observe=ObserveConfig(metrics_path=str(path)))
        Birch(config).fit(points)
        content = path.read_text()
        assert "# TYPE birch_bulk_windows counter" in content
        assert "birch_tree_threshold" in content


class TestCheckpointRoundTrip:
    def test_observe_config_survives_resume(self, points, tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        config = _config(observe=ObserveConfig(ring_capacity=99))
        birch = Birch(config)
        birch.partial_fit(points)
        birch.checkpoint(ckpt)
        resumed = Birch.resume(ckpt)
        assert isinstance(resumed.config.observe, ObserveConfig)
        assert resumed.config.observe.ring_capacity == 99
        result = resumed.finalize()
        assert result.telemetry is not None

    def test_checkpoint_write_is_counted(self, points, tmp_path):
        ckpt = tmp_path / "ckpt.bin"
        config = _config(observe=ObserveConfig())
        birch = Birch(config)
        birch.partial_fit(points)
        birch.checkpoint(ckpt)
        assert birch._recorder.counters["checkpoint.writes"] == 1
        spans = [
            e
            for e in birch._recorder.snapshot().events
            if e["event"] == "checkpoint.write"
        ]
        assert spans and spans[0]["seconds"] >= 0


class TestSupervisorTelemetry:
    def test_report_carries_phase_events_and_summary(self, points):
        run = run_supervised(points, _config(observe=ObserveConfig()))
        events = run.report.telemetry.events_named("supervisor.phase")
        assert [e["phase"] for e in events] == [
            "phase1",
            "phase2",
            "phase3",
            "phase4",
        ]
        assert all(e["status"] == "ok" for e in events)
        assert "telemetry:" in run.report.summary()


class TestIOStatsObserver:
    def test_record_calls_forward_to_observer(self):
        stats = IOStats()
        rec = Recorder()
        stats.observer = rec
        stats.record_read(2048, pages=2)
        stats.record_rebuild()
        assert rec.counters["io.page_reads"] == 2
        assert rec.counters["io.bytes_read"] == 2048
        assert rec.counters["io.rebuilds"] == 1

    def test_merge_counts_does_not_forward(self):
        # Worker counters reach the parent recorder via the telemetry
        # merge; forwarding them here too would double-count.
        stats = IOStats()
        rec = Recorder()
        stats.observer = rec
        worker = IOStats()
        worker.record_read(1024)
        stats.merge_counts(worker.state_dict())
        assert "io.page_reads" not in rec.counters

    def test_observer_not_in_state_dict(self):
        stats = IOStats()
        stats.observer = Recorder()
        assert "observer" not in stats.state_dict()
