"""Tests for the synthetic NIR/VIS scene generator."""

import numpy as np
import pytest

from repro.image.scene import (
    CATEGORY_MEANS,
    Scene,
    SceneCategory,
    SceneGenerator,
)


@pytest.fixture(scope="module")
def scene() -> Scene:
    return SceneGenerator(height=64, width=128, seed=3).generate()


class TestStructure:
    def test_shape(self, scene):
        assert scene.shape == (64, 128)
        assert scene.nir.shape == scene.vis.shape == scene.categories.shape
        assert scene.n_pixels == 64 * 128

    def test_all_categories_present(self, scene):
        present = set(np.unique(scene.categories).tolist())
        assert {int(c) for c in SceneCategory} <= present

    def test_reproducible(self):
        a = SceneGenerator(height=32, width=64, seed=9).generate()
        b = SceneGenerator(height=32, width=64, seed=9).generate()
        assert np.array_equal(a.nir, b.nir)
        assert np.array_equal(a.categories, b.categories)

    def test_different_seeds_differ(self):
        a = SceneGenerator(height=32, width=64, seed=1).generate()
        b = SceneGenerator(height=32, width=64, seed=2).generate()
        assert not np.array_equal(a.nir, b.nir)

    def test_brightness_in_range(self, scene):
        for band in (scene.nir, scene.vis):
            assert band.min() >= 0.0
            assert band.max() <= 255.0


class TestSpectralSignatures:
    def test_category_means_match_spec(self, scene):
        """Mean pixel values per category track the configured means."""
        for cat in SceneCategory:
            mask = scene.categories == cat
            if mask.sum() < 20:
                continue
            mean_nir, mean_vis = CATEGORY_MEANS[cat]
            assert scene.nir[mask].mean() == pytest.approx(mean_nir, abs=6.0)
            assert scene.vis[mask].mean() == pytest.approx(mean_vis, abs=6.0)

    def test_sky_is_vis_dominant(self, scene):
        sky = scene.categories == SceneCategory.SKY
        assert scene.vis[sky].mean() > scene.nir[sky].mean()

    def test_sunlit_leaves_are_nir_dominant(self, scene):
        leaves = scene.categories == SceneCategory.SUNLIT_LEAVES
        assert scene.nir[leaves].mean() > scene.vis[leaves].mean()

    def test_branches_darkest(self, scene):
        branches = scene.categories == SceneCategory.BRANCHES
        others = scene.categories != SceneCategory.BRANCHES
        combined = scene.nir + scene.vis
        assert combined[branches].mean() < combined[others].mean()


class TestPixelTuples:
    def test_tuple_shape(self, scene):
        tuples = scene.pixel_tuples()
        assert tuples.shape == (scene.n_pixels, 2)
        assert np.allclose(tuples[:, 0], scene.nir.ravel())

    def test_weighting(self, scene):
        tuples = scene.pixel_tuples(weights=(2.0, 0.5))
        assert np.allclose(tuples[:, 0], scene.nir.ravel() * 2.0)
        assert np.allclose(tuples[:, 1], scene.vis.ravel() * 0.5)

    def test_category_fractions_sum_to_one(self, scene):
        fractions = scene.category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestValidation:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SceneGenerator(height=8, width=8)

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            SceneGenerator(n_trees=0)
        with pytest.raises(ValueError):
            SceneGenerator(n_clouds=-1)
