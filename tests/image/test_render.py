"""Tests for the image rendering helpers."""

import numpy as np
import pytest

from repro.image.render import render_categories, render_cluster_map
from repro.image.scene import SceneGenerator


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator(height=48, width=96, seed=2).generate()


class TestCategoryRender:
    def test_dimensions(self, scene):
        out = render_categories(scene, width=60, height=20)
        lines = out.split("\n")
        assert len(lines) == 20
        assert all(len(line) == 60 for line in lines)

    def test_glyph_fractions_track_scene(self, scene):
        """Sky dominates the frame, so '.' dominates the rendering."""
        out = render_categories(scene, width=96, height=30)
        counts = {ch: out.count(ch) for ch in ".~@%|"}
        assert counts["."] > counts["@"]
        assert counts["@"] > 0
        assert counts["|"] > 0

    def test_sky_on_top(self, scene):
        out = render_categories(scene, width=60, height=20)
        top_line = out.split("\n")[0]
        assert set(top_line) <= {".", "~"}


class TestClusterMapRender:
    def test_holes_render_as_spaces(self, scene):
        labels = np.zeros(scene.n_pixels, dtype=np.int64)
        labels[: scene.n_pixels // 2] = -1
        out = render_cluster_map(labels, scene.shape, width=40, height=10)
        assert " " in out
        assert "0" in out

    def test_multiple_clusters_distinct_glyphs(self, scene):
        labels = np.arange(scene.n_pixels) % 3
        out = render_cluster_map(labels, scene.shape, width=40, height=10)
        assert {"0", "1", "2"} <= set(out)

    def test_size_mismatch_rejected(self, scene):
        with pytest.raises(ValueError):
            render_cluster_map(np.zeros(10), scene.shape)

    def test_glyphs_cycle_beyond_sixteen(self, scene):
        labels = np.full(scene.n_pixels, 17, dtype=np.int64)
        out = render_cluster_map(labels, scene.shape, width=10, height=4)
        assert "1" in out  # 17 % 16
