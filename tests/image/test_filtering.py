"""Tests for the two-pass image filtering workflow (Section 6.8)."""

import numpy as np
import pytest

from repro.image.filtering import TwoPassFilter
from repro.image.scene import SceneCategory, SceneGenerator


@pytest.fixture(scope="module")
def report():
    scene = SceneGenerator(height=48, width=96, seed=5).generate()
    return scene, TwoPassFilter(memory_bytes=64 * 1024, seed=0).run(scene)


class TestPassOne:
    def test_five_clusters(self, report):
        _, rep = report
        assert rep.pass1.n_clusters == 5

    def test_background_identified(self, report):
        _, rep = report
        assert rep.background_clusters
        assert rep.background_mask.any()

    def test_background_recall_high(self, report):
        """Nearly all true sky/cloud pixels are filtered out."""
        _, rep = report
        assert rep.background_recall is not None
        assert rep.background_recall > 0.9

    def test_pass1_purity_reasonable(self, report):
        _, rep = report
        assert rep.purity_pass1 is not None
        assert rep.purity_pass1 > 0.7


class TestPassTwo:
    def test_foreground_only(self, report):
        _, rep = report
        assert (rep.pass2_labels[rep.background_mask] == -1).all()
        assert (rep.pass2_labels[~rep.background_mask] >= 0).all()

    def test_pass2_separates_sunlit_from_shadow(self, report):
        """Sunlit leaves and shadow/branches land in different clusters."""
        scene, rep = report
        truth = scene.categories.ravel()
        fg = rep.pass2_labels >= 0
        sunlit = fg & (truth == SceneCategory.SUNLIT_LEAVES)
        branches = fg & (truth == SceneCategory.BRANCHES)
        if sunlit.sum() > 50 and branches.sum() > 50:
            sunlit_major = np.bincount(rep.pass2_labels[sunlit]).argmax()
            branch_major = np.bincount(rep.pass2_labels[branches]).argmax()
            assert sunlit_major != branch_major

    def test_pass2_purity_improves_foreground(self, report):
        _, rep = report
        assert rep.purity_pass2 is not None
        assert rep.purity_pass2 > 0.6


class TestReportContents:
    def test_category_breakdown_covers_clusters(self, report):
        _, rep = report
        assert set(rep.category_breakdown.keys()) == set(
            np.unique(rep.pass1_labels).tolist()
        )

    def test_labels_cover_all_pixels(self, report):
        scene, rep = report
        assert rep.pass1_labels.shape == (scene.n_pixels,)
        assert rep.pass2_labels.shape == (scene.n_pixels,)


class TestValidation:
    def test_bad_cluster_counts_rejected(self):
        with pytest.raises(ValueError):
            TwoPassFilter(pass1_clusters=1)
        with pytest.raises(ValueError):
            TwoPassFilter(pass2_clusters=1)


class TestCustomBackgroundRule:
    def test_rule_override_is_honoured(self):
        import numpy as np

        from repro.image.scene import SceneGenerator

        scene = SceneGenerator(height=48, width=96, seed=5).generate()

        # Filter nothing: an empty background set.
        keep_all = TwoPassFilter(
            memory_bytes=64 * 1024,
            background_rule=lambda centroids: [
                int(np.argmax(centroids[:, 1]))  # only the brightest-VIS
            ],
        )
        report = keep_all.run(scene)
        assert len(report.background_clusters) == 1

    def test_rule_receives_unweighted_centroids(self):
        import numpy as np

        from repro.image.scene import SceneGenerator

        scene = SceneGenerator(height=48, width=96, seed=5).generate()
        seen = {}

        def rule(centroids):
            seen["max"] = float(centroids.max())
            return [int(np.argmax(centroids[:, 1]))]

        TwoPassFilter(
            memory_bytes=64 * 1024,
            band_weights=(10.0, 10.0),
            background_rule=rule,
        ).run(scene)
        # Despite the 10x band weighting, the rule sees 0-255 values.
        assert seen["max"] <= 256.0
