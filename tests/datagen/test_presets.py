"""Tests for the DS1-DS3 presets and scalability families."""

import math

import numpy as np
import pytest

from repro.datagen.generator import InputOrder, Pattern
from repro.datagen.presets import (
    ds1,
    ds1o,
    ds2,
    ds2o,
    ds3,
    ds3o,
    scaled_k_family,
    scaled_n_family,
)


class TestBaseDatasets:
    def test_ds1_full_scale_shape(self):
        ds = ds1(scale=0.01)
        assert ds.name == "DS1"
        assert len(ds.clusters) == 100
        assert ds.params.pattern is Pattern.GRID
        assert ds.params.r_low == pytest.approx(math.sqrt(2.0))
        assert ds.n_points == 100 * 10  # 1000 * 0.01 per cluster

    def test_ds2_is_sine(self):
        ds = ds2(scale=0.01)
        assert ds.name == "DS2"
        assert ds.params.pattern is Pattern.SINE

    def test_ds3_is_random_with_ranges(self):
        ds = ds3(scale=0.01)
        assert ds.name == "DS3"
        assert ds.params.pattern is Pattern.RANDOM
        assert ds.params.n_low == 0
        assert ds.params.r_high == 4.0

    def test_full_scale_sizes(self):
        # At scale 1.0 the paper's N = 100,000 (DS3 in expectation).
        ds = ds1(scale=1.0)
        assert ds.n_points == 100_000

    def test_ordered_variants_share_points_with_o_variants(self):
        a = ds1(scale=0.01)
        b = ds1o(scale=0.01)
        assert b.name == "DS1O"
        assert not np.array_equal(a.points, b.points)
        assert np.allclose(a.points.sum(axis=0), b.points.sum(axis=0))

    def test_o_variants_randomized(self):
        for maker in (ds1o, ds2o, ds3o):
            assert maker(scale=0.01).params.order is InputOrder.RANDOMIZED

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ds1(scale=0.0)
        with pytest.raises(ValueError):
            ds1(scale=1.5)


class TestFamilies:
    def test_scaled_n_family_grows_linearly(self):
        family = scaled_n_family(Pattern.GRID, [10, 20, 40], n_clusters=10)
        sizes = [ds.n_points for ds in family]
        assert sizes == [100, 200, 400]

    def test_scaled_k_family_grows_with_k(self):
        family = scaled_k_family(Pattern.SINE, [4, 8, 16], per_cluster=25)
        sizes = [ds.n_points for ds in family]
        assert sizes == [100, 200, 400]
        assert [len(ds.clusters) for ds in family] == [4, 8, 16]

    def test_family_names_are_descriptive(self):
        family = scaled_n_family(Pattern.RANDOM, [10], n_clusters=5)
        assert "random" in family[0].name
        assert "n10" in family[0].name
