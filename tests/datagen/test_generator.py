"""Tests for the synthetic dataset generator of Section 6.2."""

import numpy as np
import pytest

from repro.datagen.generator import (
    DatasetGenerator,
    GeneratorParams,
    InputOrder,
    Pattern,
    NOISE_LABEL,
)


def make(pattern=Pattern.GRID, **overrides):
    kwargs = dict(
        pattern=pattern,
        n_clusters=9,
        n_low=50,
        n_high=50,
        r_low=1.0,
        r_high=1.0,
        seed=42,
    )
    kwargs.update(overrides)
    return DatasetGenerator().generate(GeneratorParams(**kwargs))


class TestShapes:
    def test_point_and_label_counts(self):
        ds = make()
        assert ds.points.shape == (450, 2)
        assert ds.labels.shape == (450,)
        assert len(ds.clusters) == 9

    def test_grid_centers_on_grid(self):
        ds = make(pattern=Pattern.GRID, grid_spacing=4.0)
        centers = np.stack([c.center for c in ds.clusters])
        spacing = 4.0 * 1.0  # kg * (r_l + r_h)/2
        # All centers are integer multiples of the spacing.
        assert np.allclose(centers % spacing, 0.0, atol=1e-9)
        # A 3x3 grid of 9 clusters.
        assert len({tuple(c) for c in centers}) == 9

    def test_sine_centers_follow_sine(self):
        ds = make(pattern=Pattern.SINE, n_clusters=16, sine_cycles=2)
        centers = np.stack([c.center for c in ds.clusters])
        xs = centers[:, 0]
        assert np.allclose(np.diff(xs), 2 * np.pi, atol=1e-9)
        amplitude = 16 / 2.0
        assert np.abs(centers[:, 1]).max() <= amplitude + 1e-9

    def test_random_centers_in_range(self):
        ds = make(pattern=Pattern.RANDOM, n_clusters=30)
        centers = np.stack([c.center for c in ds.clusters])
        assert centers.min() >= 0.0
        assert centers.max() <= 30.0


class TestClusterStatistics:
    def test_actual_radius_close_to_parameter(self):
        ds = make(n_low=2000, n_high=2000, n_clusters=4)
        for cluster in ds.clusters:
            # sigma = r/sqrt(2) makes RMS radius ~ r.
            assert cluster.actual_radius == pytest.approx(1.0, rel=0.1)

    def test_actual_centroid_close_to_center(self):
        ds = make(n_low=2000, n_high=2000, n_clusters=4)
        for cluster in ds.clusters:
            assert np.linalg.norm(cluster.actual_centroid - cluster.center) < 0.15

    def test_variable_sizes_in_range(self):
        ds = make(n_low=10, n_high=100, n_clusters=50)
        sizes = [c.n_points for c in ds.clusters]
        assert all(10 <= s <= 100 for s in sizes)
        assert len(set(sizes)) > 1

    def test_zero_size_clusters_allowed(self):
        ds = make(n_low=0, n_high=3, n_clusters=40)
        assert ds.points.shape[0] == sum(c.n_points for c in ds.clusters)

    def test_weighted_average_radius(self):
        ds = make(n_low=500, n_high=500, n_clusters=4)
        assert ds.weighted_average_radius() == pytest.approx(1.0, rel=0.15)


class TestNoise:
    def test_noise_fraction_respected(self):
        ds = make(noise_fraction=0.1)
        assert ds.n_noise == pytest.approx(0.1 * ds.n_points, rel=0.05)
        assert (ds.labels == NOISE_LABEL).sum() == ds.n_noise

    def test_noise_within_bounding_box(self):
        ds = make(noise_fraction=0.1)
        lo, hi = ds.bounding_box()
        noise = ds.points[ds.labels == NOISE_LABEL]
        assert (noise >= lo - 1e-9).all()
        assert (noise <= hi + 1e-9).all()

    def test_noise_at_end_option(self):
        ds = make(noise_fraction=0.1, noise_at_end=True)
        n_noise = ds.n_noise
        assert (ds.labels[-n_noise:] == NOISE_LABEL).all()

    def test_noise_interleaved_by_default(self):
        ds = make(noise_fraction=0.2)
        n_noise = ds.n_noise
        # With random slots it is (overwhelmingly) not all at the end.
        assert not (ds.labels[-n_noise:] == NOISE_LABEL).all()

    def test_no_noise_by_default(self):
        assert make().n_noise == 0


class TestOrdering:
    def test_ordered_emits_clusters_contiguously(self):
        ds = make(order=InputOrder.ORDERED)
        changes = (np.diff(ds.labels) != 0).sum()
        assert changes == 8  # 9 contiguous runs

    def test_randomized_shuffles(self):
        ordered = make(order=InputOrder.ORDERED)
        shuffled = make(order=InputOrder.RANDOMIZED)
        # Same multiset of points, different order.
        assert not np.array_equal(ordered.points, shuffled.points)
        assert np.allclose(
            np.sort(ordered.points.view("f8,f8"), axis=0).view(np.float64),
            np.sort(shuffled.points.view("f8,f8"), axis=0).view(np.float64),
        )

    def test_reproducible_given_seed(self):
        a = make(seed=7)
        b = make(seed=7)
        assert np.array_equal(a.points, b.points)
        c = make(seed=8)
        assert not np.array_equal(a.points, c.points)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_clusters": 0},
            {"n_low": -1},
            {"n_low": 10, "n_high": 5},
            {"r_low": -1.0},
            {"r_low": 2.0, "r_high": 1.0},
            {"noise_fraction": 1.0},
            {"grid_spacing": 0.0},
            {"sine_cycles": 0},
        ],
    )
    def test_bad_params_rejected(self, overrides):
        kwargs = dict(
            pattern=Pattern.GRID,
            n_clusters=4,
            n_low=10,
            n_high=10,
            r_low=1.0,
            r_high=1.0,
        )
        kwargs.update(overrides)
        with pytest.raises(ValueError):
            GeneratorParams(**kwargs)
