"""Tests for the d-dimensional Gaussian mixture generator."""

import numpy as np
import pytest

from repro.datagen.mixtures import GaussianMixture


class TestGeneration:
    def test_shapes(self):
        ds = GaussianMixture(
            n_components=5, dimensions=8, points_per_component=50, seed=1
        ).generate()
        assert ds.points.shape == (250, 8)
        assert ds.labels.shape == (250,)
        assert ds.centers.shape == (5, 8)
        assert ds.dimensions == 8
        assert ds.n_points == 250

    def test_labels_balanced(self):
        ds = GaussianMixture(
            n_components=4, dimensions=3, points_per_component=30, seed=2
        ).generate()
        counts = np.bincount(ds.labels)
        assert (counts == 30).all()

    def test_rms_radius_matches_parameter(self):
        ds = GaussianMixture(
            n_components=3,
            dimensions=10,
            points_per_component=3000,
            radius=2.0,
            seed=3,
        ).generate()
        for c in range(3):
            member = ds.points[ds.labels == c]
            center = member.mean(axis=0)
            rms = float(np.sqrt(((member - center) ** 2).sum(axis=1).mean()))
            assert rms == pytest.approx(2.0, rel=0.1)

    def test_separation_honoured(self):
        ds = GaussianMixture(
            n_components=6, dimensions=4, radius=1.0, separation=8.0, seed=4
        ).generate()
        diffs = ds.centers[:, None, :] - ds.centers[None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        assert dist.min() >= 8.0 - 1e-6

    def test_reproducible(self):
        a = GaussianMixture(3, 5, seed=9).generate()
        b = GaussianMixture(3, 5, seed=9).generate()
        assert np.array_equal(a.points, b.points)

    def test_points_shuffled(self):
        ds = GaussianMixture(3, 2, points_per_component=100, seed=5).generate()
        # Labels are not in contiguous blocks after the output shuffle.
        assert (np.diff(ds.labels) != 0).sum() > 10


class TestBirchOnHighDimensions:
    def test_birch_recovers_high_dim_mixture(self):
        """BIRCH works unchanged in d = 16 (CF algebra is d-agnostic)."""
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        ds = GaussianMixture(
            n_components=5,
            dimensions=16,
            points_per_component=100,
            separation=10.0,
            seed=6,
        ).generate()
        result = Birch(
            BirchConfig(n_clusters=5, total_points_hint=ds.n_points)
        ).fit(ds.points)
        for center in ds.centers:
            nearest = np.linalg.norm(result.centroids - center, axis=1).min()
            assert nearest < ds.radius

    def test_page_capacity_shrinks_with_dimension(self):
        """Same page, higher d -> smaller B: the layout responds to d."""
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        ds = GaussianMixture(3, 32, points_per_component=40, seed=7).generate()
        estimator = Birch(BirchConfig(n_clusters=3, phase4_passes=0))
        estimator.partial_fit(ds.points)
        assert estimator.tree.layout.branching_factor < 10


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_components": 0, "dimensions": 2},
            {"n_components": 2, "dimensions": 0},
            {"n_components": 2, "dimensions": 2, "points_per_component": 0},
            {"n_components": 2, "dimensions": 2, "radius": 0.0},
            {"n_components": 2, "dimensions": 2, "separation": 0.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GaussianMixture(**kwargs)
