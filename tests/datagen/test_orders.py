"""Tests for the input-order transformations."""

import numpy as np
import pytest

from repro.datagen.generator import DatasetGenerator, GeneratorParams, Pattern
from repro.datagen.orders import ORDER_MODES, reorder


@pytest.fixture(scope="module")
def dataset():
    params = GeneratorParams(
        pattern=Pattern.GRID,
        n_clusters=9,
        n_low=20,
        n_high=20,
        r_low=1.0,
        r_high=1.0,
        seed=13,
    )
    return DatasetGenerator().generate(params, name="grid9")


def point_multiset(points: np.ndarray) -> np.ndarray:
    return np.sort(points.view("f8,f8"), axis=0)


class TestReorder:
    @pytest.mark.parametrize("mode", ORDER_MODES)
    def test_points_preserved(self, dataset, mode):
        variant = reorder(dataset, mode)
        assert variant.n_points == dataset.n_points
        assert np.array_equal(
            point_multiset(variant.points), point_multiset(dataset.points)
        )

    @pytest.mark.parametrize("mode", ORDER_MODES)
    def test_labels_travel_with_points(self, dataset, mode):
        variant = reorder(dataset, mode)
        # For every reordered point, its label matches the original
        # label of the identical point.
        original = {
            tuple(p): int(l) for p, l in zip(dataset.points, dataset.labels)
        }
        for p, l in zip(variant.points[:50], variant.labels[:50]):
            assert original[tuple(p)] == int(l)

    def test_ordered_is_identity(self, dataset):
        variant = reorder(dataset, "ordered")
        assert np.array_equal(variant.points, dataset.points)

    def test_reversed(self, dataset):
        variant = reorder(dataset, "reversed")
        assert np.array_equal(variant.points, dataset.points[::-1])

    def test_sorted_x_is_monotone(self, dataset):
        variant = reorder(dataset, "sorted_x")
        assert (np.diff(variant.points[:, 0]) >= 0).all()

    def test_interleaved_round_robin(self, dataset):
        variant = reorder(dataset, "interleaved")
        # The first 9 points come from 9 different clusters.
        assert len(set(variant.labels[:9].tolist())) == 9

    def test_randomized_seeds_differ(self, dataset):
        a = reorder(dataset, "randomized", seed=0)
        b = reorder(dataset, "randomized", seed=1)
        assert not np.array_equal(a.points, b.points)

    def test_name_annotated(self, dataset):
        assert reorder(dataset, "reversed").name == "grid9:reversed"

    def test_unknown_mode_rejected(self, dataset):
        with pytest.raises(ValueError):
            reorder(dataset, "zigzag")

    def test_interleaved_with_noise_labels(self):
        params = GeneratorParams(
            pattern=Pattern.GRID,
            n_clusters=4,
            n_low=10,
            n_high=10,
            r_low=1.0,
            r_high=1.0,
            noise_fraction=0.1,
            seed=5,
        )
        noisy = DatasetGenerator().generate(params)
        variant = reorder(noisy, "interleaved")
        assert variant.n_points == noisy.n_points
        assert (variant.labels == -1).sum() == noisy.n_noise
