"""Shared-memory shard transport: bit-identity and ownership."""

import numpy as np
import pytest

from repro.parallel.shm import SharedBlock, inline_slice, open_shard

pytestmark = pytest.mark.parallel


@pytest.fixture
def rows(rng):
    return rng.normal(size=(101, 3))


class TestSharedBlock:
    def test_roundtrip_is_bit_identical(self, rows):
        with SharedBlock(rows) as block:
            view, close = open_shard(block.slice_spec(0, rows.shape[0]))
            try:
                assert np.array_equal(view, rows)
                assert view.dtype == np.float64
            finally:
                del view
                close()

    def test_slice_views_match_inline_views(self, rows):
        with SharedBlock(rows) as block:
            shm_view, close = open_shard(block.slice_spec(10, 40))
            inline_view, _ = open_shard(inline_slice(rows, 10, 40))
            try:
                # Byte-identical transport is what keeps pool and
                # serial-fallback builds byte-identical.
                assert np.array_equal(shm_view, inline_view)
            finally:
                del shm_view
                close()

    def test_non_contiguous_input_copied_correctly(self, rng):
        base = rng.normal(size=(60, 6))
        strided = base[::2, ::3]
        with SharedBlock(strided) as block:
            view, close = open_shard(block.slice_spec(0, strided.shape[0]))
            try:
                assert np.array_equal(view, strided)
            finally:
                del view
                close()

    def test_close_is_idempotent(self, rows):
        block = SharedBlock(rows)
        block.close()
        block.close()

    def test_segment_gone_after_close(self, rows):
        block = SharedBlock(rows)
        spec = block.slice_spec(0, 5)
        block.close()
        with pytest.raises(FileNotFoundError):
            open_shard(spec)


class TestSpecs:
    def test_inline_slice_is_a_view(self, rows):
        view, close = open_shard(inline_slice(rows, 5, 25))
        assert view.base is rows
        assert view.shape == (20, 3)
        close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            open_shard({"kind": "carrier-pigeon"})
