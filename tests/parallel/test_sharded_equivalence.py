"""The sharded determinism contract, enforced as a matrix.

Two distinct promises, tested separately:

* **byte identity across execution modes** — the persistent pool and
  the in-process serial fallback run the *same* sharded algorithm, so
  for any fixed ``(config, n_jobs)`` they must produce byte-identical
  results (structure arrays, centroids, ledger and all).  Worker
  processes may only buy wall-clock, never change a float.
* **quality parity and exact conservation across n_jobs** — different
  shard counts legitimately change insertion order, so across
  ``n_jobs`` the contract is cluster-count equality, centroid
  agreement and an exactly balanced conservation ledger, on both CF
  backends and both threshold kinds, outlier-heavy data included.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.tree import ThresholdKind
from repro.datagen.presets import ds1, ds1o
from repro.observe import ObserveConfig
from repro.parallel.pool import FORCE_SERIAL_ENV

pytestmark = pytest.mark.parallel

BACKENDS = ("classic", "stable")
KINDS = (ThresholdKind.DIAMETER, ThresholdKind.RADIUS)
JOBS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def grid_points():
    return ds1(scale=0.03, seed=0).points


@pytest.fixture(scope="module")
def outlier_points():
    """An outlier-heavy stream (ds1o scatters noise between clusters)."""
    return ds1o(scale=0.03, seed=3).points


def _config(**overrides) -> BirchConfig:
    base = dict(
        n_clusters=100,
        memory_bytes=256 * 1024,
        total_points_hint=3000,
        random_seed=7,
    )
    base.update(overrides)
    return BirchConfig(**base)


def _fingerprint(estimator: Birch) -> tuple:
    """Everything clustering-relevant, byte-exact, tree included."""
    result = estimator.result
    structure = estimator.tree.export_structure()
    return (
        tuple((k, structure[k].tobytes()) for k in sorted(structure)),
        result.centroids.tobytes(),
        None if result.labels is None else result.labels.tobytes(),
        result.final_threshold,
        tuple(sorted(result.accounting().items())),
        tuple((cf.n, cf.centroid.tobytes()) for cf in result.clusters),
    )


class TestPoolVsSerialByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", KINDS, ids=["diameter", "radius"])
    @pytest.mark.parametrize("jobs", JOBS)
    def test_matrix(self, grid_points, backend, kind, jobs, monkeypatch):
        config = _config(cf_backend=backend, threshold_kind=kind)

        monkeypatch.delenv(FORCE_SERIAL_ENV, raising=False)
        with Birch(config) as pooled:
            pooled.fit(grid_points, n_jobs=jobs)
            pooled_print = _fingerprint(pooled)

        monkeypatch.setenv(FORCE_SERIAL_ENV, "1")
        with Birch(config) as serial:
            serial.fit(grid_points, n_jobs=jobs)
            assert _fingerprint(serial) == pooled_print


class TestCrossJobsParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_quality_parity_across_jobs(self, grid_points, backend):
        results = [
            Birch(_config(cf_backend=backend)).fit(grid_points, n_jobs=j)
            for j in JOBS
        ]
        reference = results[0]
        for result in results[1:]:
            assert result.n_clusters == reference.n_clusters
            # Every reference centroid has a close sharded counterpart.
            d = np.linalg.norm(
                reference.centroids[:, None] - result.centroids[None], axis=2
            )
            assert d.min(axis=0).max() < 0.5
            assert result.conservation_ok

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", (2, 4))
    def test_outlier_heavy_conservation(self, outlier_points, backend, jobs):
        # Shard workers spill potential outliers to their own disks; the
        # parent re-resolves all of them against the merged tree.  The
        # ledger must balance exactly — every noise point either
        # clustered or still held as an outlier.
        result = Birch(
            _config(cf_backend=backend, disk_bytes=64 * 1024)
        ).fit(outlier_points, n_jobs=jobs)
        assert result.conservation_ok
        ledger = result.accounting()
        assert ledger["fed"] == outlier_points.shape[0]

    def test_deterministic_for_fixed_jobs(self, grid_points):
        a = Birch(_config()).fit(grid_points, n_jobs=4)
        b = Birch(_config()).fit(grid_points, n_jobs=4)
        assert a.centroids.tobytes() == b.centroids.tobytes()
        assert a.final_threshold == b.final_threshold


class TestEdgeShapes:
    def test_fewer_points_than_shards(self, grid_points):
        # Regression: n < n_jobs used to reach max(initial, *()) — a
        # TypeError — once the empty shards were filtered out.
        result = Birch(_config()).fit(grid_points[:3], n_jobs=8)
        assert result.conservation_ok
        assert result.points_fed == 3

    def test_single_point_many_shards(self, grid_points):
        result = Birch(_config()).fit(grid_points[:1], n_jobs=4)
        assert result.points_fed == 1
        assert result.conservation_ok

    def test_pool_clamp_emits_telemetry(self, grid_points):
        import os

        jobs = (os.cpu_count() or 1) + 2  # always over the machine size
        with Birch(_config(observe=ObserveConfig())) as estimator:
            result = estimator.fit(grid_points, n_jobs=jobs)
        events = result.telemetry.events_named("pool.clamped")
        assert events, "clamping past cpu_count must be recorded"
        assert events[0]["requested"] == jobs
        assert events[0]["effective"] <= (os.cpu_count() or 1)
        assert result.conservation_ok


class TestPersistentPool:
    def test_pool_reused_across_fits(self, grid_points):
        with Birch(_config()) as estimator:
            estimator.fit(grid_points, n_jobs=2)
            pool_after_first = estimator._pool
            assert pool_after_first is not None
            estimator.fit(grid_points, n_jobs=2)
            assert estimator._pool is pool_after_first
        assert not estimator._pool.alive

    def test_close_without_fit_is_noop(self):
        with Birch(_config()):
            pass
