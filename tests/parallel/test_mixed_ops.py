"""Heterogeneous-op pool reuse and stale-busy worker retirement.

A persistent :class:`~repro.parallel.pool.SharedPool` outlives any one
dispatch and any one task *kind*: an estimator's pool that just built
shards may next run forest member fits (:mod:`repro.ensemble`).  Two
properties make that safe, both pinned here:

* task ids are global (never reset per dispatch), so a result from an
  aborted earlier dispatch of a *different op* can never be mistaken
  for a current task's;
* a worker still executing an abandoned task when the next dispatch
  starts is retired outright by ``_drain_stale`` — before the fix it
  squatted its slot and leaked its stale ``started_at`` into the new
  dispatch's hang check, charging phantom ``worker.hang`` incidents
  (and respawn budget) to an op that never dispatched to it.
"""

import time

import numpy as np
import pytest

from repro.core.config import BirchConfig
from repro.errors import PermanentIOError
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import SharedPool
from repro.parallel.shm import inline_slice
from repro.parallel.supervise import Supervisor
from repro.parallel.worker import (
    OP_BUILD,
    OP_MEMBER,
    OP_MERGE,
    build_shard,
    fit_member,
)

pytestmark = [pytest.mark.parallel, pytest.mark.ensemble]

FAST = dict(retry_backoff_seconds=0.0, supervise_interval_seconds=0.02)


def _square(x):
    return x * x


def _cube(x):
    return x**3


def _raise_or_sleep(x):
    if x == 0:
        raise PermanentIOError("task 0 is fatal")
    time.sleep(5.0)
    return x


def _blobs(n_per=60, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [0.0, 9.0]])
    return np.vstack(
        [c + rng.normal(scale=0.4, size=(n_per, 2)) for c in centers]
    )


class TestHeterogeneousDispatch:
    def test_one_pool_serves_successive_ops(self):
        pool = SharedPool(2, parallel=ParallelConfig(**FAST))
        try:
            assert pool.map(_square, [1, 2, 3], op=OP_BUILD) == [1, 4, 9]
            assert pool.map(_cube, [2, 3], op=OP_MEMBER) == [8, 27]
            assert pool.map(_square, [4], op=OP_MERGE) == [16]
            assert pool.reset_incidents() == []
        finally:
            pool.close()

    def test_member_fit_after_shard_build_on_one_pool(self):
        # The real heterogeneous sequence: shard builds, then forest
        # member fits, on the same worker fleet.  Results must match
        # in-process runs of the same pure task functions.
        points = _blobs()
        config = BirchConfig(
            n_clusters=3, memory_bytes=40_000, validate_points=False
        )
        member_task = {
            "config": config,
            "shard": inline_slice(points, 0, points.shape[0]),
            "member": 0,
            "shuffle_seed": 123,
            "features": None,
            "want_entries": True,
        }
        build_task = {
            "config": config,
            "shard": inline_slice(points, 0, points.shape[0]),
        }
        pool = SharedPool(2, parallel=ParallelConfig(**FAST))
        try:
            built = pool.map(build_shard, [build_task], op=OP_BUILD)
            states = pool.map(
                fit_member, [member_task, member_task], op=OP_MEMBER
            )
            assert pool.reset_incidents() == []
        finally:
            pool.close()
        assert built[0]["points"] == points.shape[0]
        expected = fit_member(member_task)
        for state in states:
            np.testing.assert_array_equal(
                state["centroids"], expected["centroids"]
            )
            np.testing.assert_array_equal(
                state["entry_ns"], expected["entry_ns"]
            )

    def test_forest_reusing_estimator_style_pool_matches_owned(self):
        from repro.ensemble import BirchForest, ForestConfig

        points = _blobs()
        config = ForestConfig(
            base=BirchConfig(n_clusters=3, memory_bytes=40_000),
            n_members=3,
            seed=11,
        )
        shared = SharedPool(2, parallel=ParallelConfig(**FAST))
        try:
            # Warm the pool with a different op first (shard-build
            # stand-in), then run the forest's member dispatch on it.
            shared.map(_square, [1, 2], op=OP_BUILD)
            with BirchForest(config, pool=shared) as borrowing:
                borrowed = borrowing.fit(points, n_jobs=2)
            # A borrowed pool must survive the forest's close().
            assert shared.map(_square, [3], op=OP_BUILD) == [9]
        finally:
            shared.close()
        with BirchForest(config) as owning:
            owned = owning.fit(points, n_jobs=2)
        np.testing.assert_array_equal(borrowed.centroids, owned.centroids)
        np.testing.assert_array_equal(borrowed.labels, owned.labels)


class TestStaleWorkerRetirement:
    def test_stale_busy_worker_is_retired_not_hang_culled(self):
        sup = Supervisor(2, config=ParallelConfig(**FAST))
        try:
            with pytest.raises(PermanentIOError):
                # Task 0 raises instantly and aborts the dispatch while
                # task 1's worker is still asleep inside its payload.
                sup.map(_raise_or_sleep, [0, 1], op=OP_BUILD)
            before = set(sup.worker_pids)
            assert sup.map(_square, [5, 6], op=OP_MEMBER) == [25, 36]
            kinds = [i.kind for i in sup.incidents]
            assert "pool.stale_worker" in kinds
            assert "worker.hang" not in kinds, (
                "a stale worker from the aborted build dispatch must be "
                "retired, not charged as a hang of the member dispatch"
            )
            stale = [
                i for i in sup.incidents if i.kind == "pool.stale_worker"
            ]
            assert stale[0].op == OP_MEMBER
            assert stale[0].detail["stale_task_id"] is not None
            # The squatter is gone and its replacement keeps the fleet
            # at full strength.
            assert stale[0].detail["pid"] not in sup.worker_pids
            assert len(sup.worker_pids) == 2
            assert set(sup.worker_pids) != before
            # Subsequent dispatches run on a clean fleet: no further
            # stale retirements.
            n_stale = len(stale)
            assert sup.map(_cube, [2, 3], op=OP_MERGE) == [8, 27]
            assert (
                sum(
                    1
                    for i in sup.incidents
                    if i.kind == "pool.stale_worker"
                )
                == n_stale
            )
        finally:
            sup.close()

    def test_stale_retirement_skips_respawn_budget(self):
        # Retiring a stale worker must not consume the next dispatch's
        # respawn budget: with a budget of zero the replacement is
        # still spawned and the fleet stays at strength.
        sup = Supervisor(
            2, config=ParallelConfig(max_worker_respawns=0, **FAST)
        )
        try:
            with pytest.raises(PermanentIOError):
                sup.map(_raise_or_sleep, [0, 1], op=OP_BUILD)
            assert sup.map(_square, [7, 8], op=OP_MEMBER) == [49, 64]
            kinds = [i.kind for i in sup.incidents]
            assert "pool.stale_worker" in kinds
            assert "pool.respawn" not in kinds
            assert len(sup.worker_pids) == 2
        finally:
            sup.close()

    def test_pool_reuse_after_abort_with_mixed_ops(self):
        pool = SharedPool(2, parallel=ParallelConfig(**FAST))
        try:
            with pytest.raises(PermanentIOError):
                pool.map(_raise_or_sleep, [0, 1], op=OP_BUILD)
            incidents = pool.reset_incidents()
            assert any(i.kind == "task.error" for i in incidents)
            assert pool.map(_cube, [2, 3, 4], op=OP_MEMBER) == [8, 27, 64]
            kinds = [i.kind for i in pool.reset_incidents()]
            assert "worker.hang" not in kinds
        finally:
            pool.close()
