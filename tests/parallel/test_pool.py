"""SharedPool semantics: ordering, persistence, typed error transport.

The regression these tests pin down: the old sharded build caught
``(OSError, PermissionError, ImportError)`` around the *whole* dispatch,
so a worker raising :class:`~repro.errors.IOFaultError` (an ``OSError``
subclass) silently re-ran the shard serially instead of surfacing the
fault.  :class:`~repro.parallel.pool.SharedPool` must reserve the
fallback for pool-creation failures and re-raise worker exceptions with
their original types.
"""

import pytest

from repro.errors import InvalidPointError, PermanentIOError, ReproError
from repro.parallel.pool import FORCE_SERIAL_ENV, SharedPool, WorkerError

pytestmark = pytest.mark.parallel


# Worker callables must be module-level to pickle under any start method.
def _square(x):
    return x * x


def _raise_invalid_point(x):
    raise InvalidPointError("bad row in worker", row=int(x), reason="non_finite")


def _raise_permanent_io(x):
    raise PermanentIOError(f"disk page {x} unreadable")


class _Unpicklable(Exception):
    def __init__(self, handle):
        super().__init__("holds an fd")
        self.handle = handle


def _raise_unpicklable(x):
    _raise_unpicklable.closure = lambda: x  # noqa: B010 - make it truly local
    raise _Unpicklable(handle=_raise_unpicklable.closure)


@pytest.fixture(params=["pool", "serial"])
def pool(request, monkeypatch):
    """The same assertions must hold with and without real processes."""
    if request.param == "serial":
        monkeypatch.setenv(FORCE_SERIAL_ENV, "1")
    else:
        monkeypatch.delenv(FORCE_SERIAL_ENV, raising=False)
    p = SharedPool(2)
    yield p
    p.close()


class TestMap:
    def test_preserves_task_order(self, pool):
        assert pool.map(_square, range(17)) == [i * i for i in range(17)]

    def test_empty_tasks(self, pool):
        assert pool.map(_square, []) == []

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValueError):
            SharedPool(0)


class TestTypedErrors:
    def test_worker_error_keeps_original_type(self, pool):
        with pytest.raises(InvalidPointError) as excinfo:
            pool.map(_raise_invalid_point, [7])
        assert excinfo.value.row == 7
        assert excinfo.value.reason == "non_finite"

    def test_oserror_subclass_is_not_swallowed(self, pool):
        # The regression: IOFaultError subclasses OSError, which the old
        # dispatch-wide except clause treated as "platform cannot fork".
        with pytest.raises(PermanentIOError):
            pool.map(_raise_permanent_io, [3])

    def test_unpicklable_exception_becomes_worker_error(self, pool):
        with pytest.raises((WorkerError, _Unpicklable)) as excinfo:
            pool.map(_raise_unpicklable, [1])
        if isinstance(excinfo.value, WorkerError):
            assert "_Unpicklable" in str(excinfo.value)
            assert isinstance(excinfo.value, ReproError)


class TestLifecycle:
    def test_persists_across_maps(self):
        pool = SharedPool(2)
        try:
            pool.map(_square, [1, 2])
            was_alive = pool.alive
            pool.map(_square, [3, 4])
            # Whatever mode the platform allowed, a second dispatch must
            # not have torn down and recreated the mode.
            assert pool.alive == was_alive
        finally:
            pool.close()

    def test_close_is_idempotent_and_reusable(self):
        pool = SharedPool(2)
        pool.map(_square, [1])
        pool.close()
        pool.close()
        assert not pool.alive
        assert pool.map(_square, [5]) == [25]
        pool.close()

    def test_forced_serial_never_spawns(self, monkeypatch):
        monkeypatch.setenv(FORCE_SERIAL_ENV, "1")
        pool = SharedPool(4)
        assert pool.serial
        assert pool.map(_square, [2, 3]) == [4, 9]
        assert not pool.alive
        pool.close()

    def test_creation_failure_degrades_to_serial(self, monkeypatch):
        monkeypatch.delenv(FORCE_SERIAL_ENV, raising=False)

        class _NoFork:
            # The supervisor's first act is wiring a control pipe; a
            # sandbox that cannot provide one cannot run workers.
            def Pipe(self, duplex=True):
                raise OSError("no processes in this sandbox")

            def Value(self, typecode, value):
                raise OSError("no processes in this sandbox")

        pool = SharedPool(2, context=_NoFork())
        assert pool.serial
        assert pool.map(_square, [4]) == [16]
        # Worker errors still surface typed through the serial sweep.
        with pytest.raises(PermanentIOError):
            pool.map(_raise_permanent_io, [0])
        pool.close()
