"""Crash-safety across the sharded build: checkpoint, kill, resume."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.presets import ds1
from repro.parallel.chaos import ChaosInjector
from repro.parallel.config import ParallelConfig

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def grid_points():
    return ds1(scale=0.03, seed=0).points


def _config(path, **overrides) -> BirchConfig:
    base = dict(
        n_clusters=100,
        memory_bytes=256 * 1024,
        checkpoint_every_points=500,
        checkpoint_path=str(path),
        phase4_passes=0,
        random_seed=7,
    )
    base.update(overrides)
    return BirchConfig(**base)


class TestShardedCheckpointResume:
    def test_killed_sharded_fit_resumes_to_a_balanced_ledger(
        self, grid_points, tmp_path
    ):
        """A sharded fit checkpoints after adopting the merged tree; a
        process killed there must resume from disk and finish the
        stream with the conservation ledger still exact."""
        path = tmp_path / "sharded.npz"
        half = grid_points.shape[0] // 2

        with Birch(_config(path)) as interrupted:
            interrupted.fit(grid_points[:half], n_jobs=4)
            assert interrupted._pool is not None  # the pool it would reuse
        assert path.exists()

        resumed = Birch.resume(path)
        fed = resumed.points_seen
        assert 0 < fed <= half
        # The checkpointed tree is the adopted merge result (or a later
        # outlier-resolution step): feeding the not-yet-covered rows
        # must finish cleanly.
        resumed.partial_fit(grid_points[fed:])
        result = resumed.finalize()
        assert result.conservation_ok
        assert resumed.points_seen == grid_points.shape[0]
        assert result.n_clusters > 0

    def test_checkpoint_written_during_sharded_fit_is_loadable(
        self, grid_points, tmp_path
    ):
        path = tmp_path / "mid.npz"
        with Birch(_config(path)) as estimator:
            estimator.fit(grid_points, n_jobs=2)
        resumed = Birch.resume(path)
        assert resumed.points_seen > 0
        # The restored tree must satisfy its own invariants.
        resumed.tree.check_invariants()

    @pytest.mark.chaos
    @pytest.mark.parametrize("cf_backend", ["stable", "classic"])
    def test_worker_sigkill_then_resume_is_bit_identical(
        self, grid_points, tmp_path, cf_backend
    ):
        """The double crash: a worker is SIGKILLed *during* the first
        (checkpointing) fit, the supervised ladder heals it, and then
        the whole process "dies" and resumes from the checkpoint.  The
        continuation must be bit-for-bit the run that never saw either
        failure, with the conservation ledger balanced — on both CF
        backends."""
        half = grid_points.shape[0] // 2
        fast = dict(
            retry_backoff_seconds=0.0, supervise_interval_seconds=0.02
        )

        def run(path, chaos):
            config = _config(
                path,
                cf_backend=cf_backend,
                parallel=ParallelConfig(**fast),
            )
            with Birch(config, chaos_injector=chaos) as interrupted:
                result = interrupted.fit(grid_points[:half], n_jobs=2)
                incidents = list(result.parallel_incidents)
            resumed = Birch.resume(path)
            fed = resumed.points_seen
            resumed.partial_fit(grid_points[fed:])
            final = resumed.finalize()
            return final, incidents

        chaos = ChaosInjector(mode="kill", fail_on_task=0)
        killed, incidents = run(tmp_path / "killed.npz", chaos)
        clean, no_incidents = run(tmp_path / "clean.npz", None)

        assert chaos.faults_injected == 1
        assert any(i["kind"] == "worker.death" for i in incidents)
        assert no_incidents == []
        assert killed.centroids.tobytes() == clean.centroids.tobytes()
        assert killed.final_threshold == clean.final_threshold
        assert killed.accounting() == clean.accounting()
        assert killed.conservation_ok and clean.conservation_ok

    def test_pool_survives_checkpointed_refits(self, grid_points, tmp_path):
        path = tmp_path / "refit.npz"
        with Birch(_config(path)) as estimator:
            estimator.fit(grid_points, n_jobs=2)
            first_pool = estimator._pool
            estimator.fit(grid_points, n_jobs=2)
            assert estimator._pool is first_pool
            a = estimator.result.centroids.tobytes()
        with Birch(_config(path)) as fresh:
            fresh.fit(grid_points, n_jobs=2)
            assert fresh.result.centroids.tobytes() == a
