"""Crash-safety across the sharded build: checkpoint, kill, resume."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.presets import ds1

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def grid_points():
    return ds1(scale=0.03, seed=0).points


def _config(path, **overrides) -> BirchConfig:
    base = dict(
        n_clusters=100,
        memory_bytes=256 * 1024,
        checkpoint_every_points=500,
        checkpoint_path=str(path),
        phase4_passes=0,
        random_seed=7,
    )
    base.update(overrides)
    return BirchConfig(**base)


class TestShardedCheckpointResume:
    def test_killed_sharded_fit_resumes_to_a_balanced_ledger(
        self, grid_points, tmp_path
    ):
        """A sharded fit checkpoints after adopting the merged tree; a
        process killed there must resume from disk and finish the
        stream with the conservation ledger still exact."""
        path = tmp_path / "sharded.npz"
        half = grid_points.shape[0] // 2

        with Birch(_config(path)) as interrupted:
            interrupted.fit(grid_points[:half], n_jobs=4)
            assert interrupted._pool is not None  # the pool it would reuse
        assert path.exists()

        resumed = Birch.resume(path)
        fed = resumed.points_seen
        assert 0 < fed <= half
        # The checkpointed tree is the adopted merge result (or a later
        # outlier-resolution step): feeding the not-yet-covered rows
        # must finish cleanly.
        resumed.partial_fit(grid_points[fed:])
        result = resumed.finalize()
        assert result.conservation_ok
        assert resumed.points_seen == grid_points.shape[0]
        assert result.n_clusters > 0

    def test_checkpoint_written_during_sharded_fit_is_loadable(
        self, grid_points, tmp_path
    ):
        path = tmp_path / "mid.npz"
        with Birch(_config(path)) as estimator:
            estimator.fit(grid_points, n_jobs=2)
        resumed = Birch.resume(path)
        assert resumed.points_seen > 0
        # The restored tree must satisfy its own invariants.
        resumed.tree.check_invariants()

    def test_pool_survives_checkpointed_refits(self, grid_points, tmp_path):
        path = tmp_path / "refit.npz"
        with Birch(_config(path)) as estimator:
            estimator.fit(grid_points, n_jobs=2)
            first_pool = estimator._pool
            estimator.fit(grid_points, n_jobs=2)
            assert estimator._pool is first_pool
            a = estimator.result.centroids.tobytes()
        with Birch(_config(path)) as fresh:
            fresh.fit(grid_points, n_jobs=2)
            assert fresh.result.centroids.tobytes() == a
