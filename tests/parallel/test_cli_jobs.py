"""CLI behaviour of ``--jobs``: typed exits and supervised parallelism."""

import numpy as np
import pytest

from repro.cli import main

pytestmark = pytest.mark.parallel


@pytest.fixture
def csv_points(tmp_path, rng):
    points = np.concatenate(
        [rng.normal(c, 0.4, size=(80, 2)) for c in ((0, 0), (10, 0))]
    )
    path = tmp_path / "points.csv"
    np.savetxt(path, points, delimiter=",")
    return path


@pytest.fixture
def dirty_csv(tmp_path, rng):
    points = rng.normal(0.0, 0.5, size=(120, 2))
    points[11, 1] = np.nan
    path = tmp_path / "dirty.csv"
    np.savetxt(path, points, delimiter=",")
    return path


class TestJobsExitCodes:
    def test_invalid_point_with_jobs_exits_3(self, dirty_csv, capsys):
        # The regression companion: a typed error in a parallel run must
        # exit with its mapped code, not be swallowed into a serial
        # retry or a generic crash.
        from repro.cli import EXIT_INVALID_POINT

        code = main(["cluster", str(dirty_csv), "-k", "2", "--jobs", "2"])
        assert code == EXIT_INVALID_POINT == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_clean_run_with_jobs_succeeds(self, csv_points, capsys):
        code = main(["cluster", str(csv_points), "-k", "2", "--jobs", "2"])
        assert code == 0
        assert "clustered 160 points" in capsys.readouterr().out


class TestSupervisedJobs:
    def test_supervised_without_deadline_uses_jobs(self, csv_points, capsys):
        code = main(
            [
                "cluster",
                str(csv_points),
                "-k",
                "2",
                "--jobs",
                "2",
                "--supervised",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "--jobs ignored" not in out

    def test_supervised_with_deadline_warns_and_stays_serial(
        self, csv_points, capsys
    ):
        code = main(
            [
                "cluster",
                str(csv_points),
                "-k",
                "2",
                "--jobs",
                "2",
                "--supervised",
                "--phase-seconds",
                "30",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "--jobs ignored" in out
