"""Supervisor internals: liveness, respawn budget, backoff, stale drain.

:mod:`tests.parallel.test_chaos` drives the supervisor through
:class:`~repro.parallel.pool.SharedPool` and the full estimator; this
module pins down the engine itself — including failure modes the chaos
injector cannot express, like a worker SIGKILLed *from outside* while
idle, or a respawn budget of zero.
"""

import os
import signal
import time

import pytest

from repro.errors import PermanentIOError, TransientIOError
from repro.parallel.chaos import ChaosInjector
from repro.parallel.config import ParallelConfig
from repro.parallel.supervise import Incident, Supervisor, WorkerError

pytestmark = [pytest.mark.parallel, pytest.mark.chaos]

FAST = dict(retry_backoff_seconds=0.0, supervise_interval_seconds=0.02)


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.1)
    return x * x


def _raise_permanent(x):
    raise PermanentIOError(f"page {x} gone")


def _return_unpicklable(x):
    return lambda: x  # lambdas do not pickle


@pytest.fixture
def supervisor():
    sup = Supervisor(2, config=ParallelConfig(**FAST))
    yield sup
    sup.close()


class TestIncident:
    def test_to_dict_flattens_detail(self):
        incident = Incident(
            "worker.death",
            "build",
            task_index=3,
            attempt=1,
            detail={"pid": 1234, "exitcode": -9},
        )
        assert incident.to_dict() == {
            "kind": "worker.death",
            "op": "build",
            "task_index": 3,
            "attempt": 1,
            "pid": 1234,
            "exitcode": -9,
        }


class TestFleet:
    def test_workers_are_live_and_enumerable(self, supervisor):
        pids = supervisor.worker_pids
        assert len(pids) == 2
        assert supervisor.alive
        for pid in pids:
            os.kill(pid, 0)  # raises if the process does not exist

    def test_close_reaps_every_worker(self, supervisor):
        pids = supervisor.worker_pids
        supervisor.close()
        assert not supervisor.alive
        deadline = time.monotonic() + 5.0
        while supervisor.worker_pids and time.monotonic() < deadline:
            time.sleep(0.01)
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_close_is_idempotent(self, supervisor):
        supervisor.close()
        supervisor.close()

    def test_map_preserves_order(self, supervisor):
        assert supervisor.map(_square, list(range(10)), op="build") == [
            i * i for i in range(10)
        ]


class TestExternalKill:
    def test_idle_worker_killed_from_outside_is_replaced(self, supervisor):
        victim = supervisor.worker_pids[0]
        os.kill(victim, signal.SIGKILL)
        # The next dispatch must notice the corpse, respawn, and finish.
        assert supervisor.map(_square, list(range(6)), op="build") == [
            i * i for i in range(6)
        ]
        kinds = [i.kind for i in supervisor.incidents]
        assert "worker.death" in kinds
        assert "pool.respawn" in kinds
        assert victim not in supervisor.worker_pids
        assert len(supervisor.worker_pids) == 2

    def test_busy_worker_killed_from_outside_retries_its_task(self):
        import threading

        sup = Supervisor(1, config=ParallelConfig(**FAST))
        try:
            pid = sup.worker_pids[0]

            def _kill_soon():
                # Strike while the worker sleeps inside its first task.
                time.sleep(0.05)
                os.kill(pid, signal.SIGKILL)

            threading.Thread(target=_kill_soon, daemon=True).start()
            assert sup.map(_slow_square, [3, 4], op="build") == [9, 16]
            assert any(
                i.kind == "task.retry" for i in sup.incidents
            ), "the interrupted task must have been retried"
        finally:
            sup.close()


class TestRespawnBudget:
    def test_budget_zero_finishes_in_process(self):
        chaos = ChaosInjector(mode="kill", fail_on_task=0)
        sup = Supervisor(
            1,
            config=ParallelConfig(max_worker_respawns=0, **FAST),
            chaos=chaos,
        )
        try:
            assert sup.map(_square, [2, 3, 4], op="build") == [4, 9, 16]
            kinds = [i.kind for i in sup.incidents]
            assert "pool.respawn" not in kinds
            escalated = [
                i for i in sup.incidents if i.kind == "task.escalated"
            ]
            assert escalated
            assert all(
                i.detail["reason"] == "no-workers" for i in escalated
            )
            assert not sup.alive
        finally:
            sup.close()

    def test_budget_is_consumed_across_deaths(self):
        chaos = ChaosInjector(mode="kill", fail_every=1, max_faults=2)
        sup = Supervisor(
            2,
            config=ParallelConfig(max_worker_respawns=8, **FAST),
            chaos=chaos,
        )
        try:
            assert sup.map(_square, list(range(6)), op="build") == [
                i * i for i in range(6)
            ]
            respawns = [
                i for i in sup.incidents if i.kind == "pool.respawn"
            ]
            assert len(respawns) == 2
            remaining = [i.detail["respawns_left"] for i in respawns]
            assert sorted(remaining, reverse=True) == [7, 6]
        finally:
            sup.close()


class TestBackoff:
    def _ladder_sleeps(self, seed: int) -> list[float]:
        sleeps: list[float] = []
        chaos = ChaosInjector(mode="raise", fail_every=1, max_faults=3)
        sup = Supervisor(
            1,
            config=ParallelConfig(
                retry_backoff_seconds=0.01,
                backoff_seed=seed,
                max_task_retries=2,
                supervise_interval_seconds=0.02,
            ),
            chaos=chaos,
            sleep=sleeps.append,
        )
        try:
            sup.map(_square, [1, 2, 3], op="build")
        finally:
            sup.close()
        return sleeps

    def test_backoff_is_seeded_and_jittered(self):
        first = self._ladder_sleeps(seed=0)
        again = self._ladder_sleeps(seed=0)
        other = self._ladder_sleeps(seed=99)
        assert first  # the transient errors really did back off
        assert first == again, "same seed must replay the same backoff"
        assert first != other, "different seed must jitter differently"
        # attempt-1 retries: base * 2**0 * (0.5 + u), u in [0, 1)
        assert all(0.005 <= s < 0.015 for s in first)


class TestErrorPaths:
    def test_transient_error_retries_then_propagates(self):
        # Injected transient faults on every attempt: the task retries
        # max_task_retries times, then the error surfaces typed.
        chaos = ChaosInjector(
            mode="raise", fail_on_task=0, first_attempt_only=False
        )
        sup = Supervisor(
            1,
            config=ParallelConfig(max_task_retries=2, **FAST),
            chaos=chaos,
        )
        try:
            with pytest.raises(TransientIOError):
                sup.map(_square, [5], op="build")
            retries = [i for i in sup.incidents if i.kind == "task.retry"]
            assert len(retries) == 2
        finally:
            sup.close()

    def test_fatal_error_keeps_original_type(self, supervisor):
        with pytest.raises(PermanentIOError):
            supervisor.map(_raise_permanent, [0], op="build")
        assert any(i.kind == "task.error" for i in supervisor.incidents)

    def test_unpicklable_result_is_reported_not_retried(self, supervisor):
        with pytest.raises(WorkerError, match="did not pickle"):
            supervisor.map(_return_unpicklable, [1], op="build")

    def test_dispatch_after_fatal_error_starts_clean(self, supervisor):
        # A raising dispatch leaves siblings in flight; their stale
        # results must not be mistaken for the next dispatch's.
        with pytest.raises(PermanentIOError):
            supervisor.map(
                _raise_permanent, [0], op="build"
            )
        for _ in range(3):
            assert supervisor.map(
                _slow_square, [7, 8], op="build"
            ) == [49, 64]


class TestDeadlines:
    def test_config_deadline_applies_without_override(self):
        chaos = ChaosInjector(mode="hang", fail_on_task=0, hang_seconds=60.0)
        sup = Supervisor(
            2,
            config=ParallelConfig(task_deadline_seconds=0.3, **FAST),
            chaos=chaos,
        )
        try:
            start = time.monotonic()
            assert sup.map(_square, [1, 2], op="build") == [1, 4]
            assert time.monotonic() - start < 30.0
            assert any(
                i.kind == "worker.hang" for i in sup.incidents
            )
        finally:
            sup.close()

    def test_override_beats_config(self):
        chaos = ChaosInjector(mode="hang", fail_on_task=0, hang_seconds=60.0)
        sup = Supervisor(
            2,
            config=ParallelConfig(task_deadline_seconds=None, **FAST),
            chaos=chaos,
        )
        try:
            assert sup.map(
                _square, [1, 2], op="build", task_deadline=0.3
            ) == [1, 4]
            hangs = [i for i in sup.incidents if i.kind == "worker.hang"]
            assert hangs and hangs[0].detail["deadline_seconds"] == 0.3
        finally:
            sup.close()
