"""Seeded process-chaos: the parallel build must survive sabotage.

The contract under test (the PR's acceptance bar): for a fixed
``(random_seed, n_jobs)``, a sharded fit under injected worker kill /
hang / typed-error faults either completes **byte-identical** to the
failure-free run, or raises a typed error with
``parallel_incidents`` populated.  Never a hang, never a leaked
segment (the autouse leak fixture), never a silently different result.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.presets import ds1
from repro.errors import PermanentIOError, TransientIOError, WorkerCrashError
from repro.parallel.chaos import ChaosDirective, ChaosInjector
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import SharedPool

pytestmark = [pytest.mark.parallel, pytest.mark.chaos]


# -- injector unit behaviour (no processes) -----------------------------------


class TestChaosInjector:
    def test_every_k_schedule_is_deterministic(self):
        a = ChaosInjector(mode="kill", fail_every=3)
        b = ChaosInjector(mode="kill", fail_every=3)
        plan_a = [a.plan("build", i, 0) is not None for i in range(9)]
        plan_b = [b.plan("build", i, 0) is not None for i in range(9)]
        assert plan_a == plan_b
        assert plan_a == [False, False, True] * 3

    def test_probability_schedule_replays_for_a_seed(self):
        a = ChaosInjector(mode="kill", fail_probability=0.5, seed=42)
        b = ChaosInjector(mode="kill", fail_probability=0.5, seed=42)
        hits_a = [a.plan("build", i, 0) is not None for i in range(50)]
        hits_b = [b.plan("build", i, 0) is not None for i in range(50)]
        assert hits_a == hits_b
        assert any(hits_a) and not all(hits_a)

    def test_one_shot_fires_once_then_disarms(self):
        inj = ChaosInjector(mode="kill", fail_on_task=2)
        hits = [inj.plan("build", i, 0) is not None for i in range(6)]
        assert hits == [False, False, True, False, False, False]
        assert inj.faults_injected == 1

    def test_retries_run_clean_by_default(self):
        inj = ChaosInjector(mode="kill", fail_every=1)
        assert inj.plan("build", 0, 0) is not None
        assert inj.plan("build", 0, 1) is None  # the retry heals
        assert inj.plan("build", 0, 2) is None

    def test_poison_mode_fires_on_every_attempt(self):
        inj = ChaosInjector(
            mode="kill", fail_on_task=0, first_attempt_only=False
        )
        assert inj.plan("build", 0, 0) is not None
        assert inj.plan("build", 0, 1) is not None
        assert inj.plan("build", 0, 2) is not None

    def test_max_faults_bounds_the_blast_radius(self):
        inj = ChaosInjector(mode="kill", fail_every=1, max_faults=2)
        hits = [inj.plan("build", i, 0) is not None for i in range(5)]
        assert hits == [True, True, False, False, False]

    def test_non_matching_op_advances_no_schedule(self):
        inj = ChaosInjector(mode="kill", ops=("merge",), fail_every=1)
        assert inj.plan("build", 0, 0) is None
        assert inj.plan_count == 0
        assert inj.plan("merge", 0, 0) is not None

    def test_reset_rewinds_every_schedule(self):
        inj = ChaosInjector(mode="kill", fail_probability=0.5, seed=7)
        first = [inj.plan("build", i, 0) is not None for i in range(20)]
        inj.reset()
        again = [inj.plan("build", i, 0) is not None for i in range(20)]
        assert first == again
        assert inj.faults_injected == sum(again)

    def test_directive_shapes(self):
        assert ChaosInjector(mode="kill").plan("build", 0, 0) is None or True
        kill = ChaosInjector(mode="kill", fail_every=1).plan("build", 0, 0)
        assert kill == ChaosDirective("kill")
        hang = ChaosInjector(
            mode="hang", fail_every=1, hang_seconds=9.0
        ).plan("build", 0, 0)
        assert hang.kind == "hang" and hang.seconds == 9.0
        raise_ = ChaosInjector(mode="raise", fail_every=1).plan("build", 0, 0)
        assert isinstance(raise_.error, TransientIOError)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosInjector(mode="explode")
        with pytest.raises(ValueError):
            ChaosInjector(fail_every=0)
        with pytest.raises(ValueError):
            ChaosInjector(fail_probability=1.5)


# -- pool-level ladder under chaos --------------------------------------------


def _square(x):
    return x * x


LADDER = ParallelConfig(retry_backoff_seconds=0.0, supervise_interval_seconds=0.02)


class TestPoolChaos:
    def test_killed_workers_retry_to_the_same_results(self):
        chaos = ChaosInjector(mode="kill", fail_every=2)
        with SharedPool(2, chaos=chaos, parallel=LADDER) as pool:
            assert pool.map(_square, range(8), op="build") == [
                i * i for i in range(8)
            ]
            kinds = {i.kind for i in pool.incidents}
        assert chaos.faults_injected == 4
        assert {"worker.death", "pool.respawn", "task.retry"} <= kinds

    def test_hung_worker_is_terminated_and_task_retried(self):
        chaos = ChaosInjector(mode="hang", fail_on_task=1, hang_seconds=60.0)
        with SharedPool(2, chaos=chaos, parallel=LADDER) as pool:
            results = pool.map(
                _square, range(4), op="build", task_deadline=0.4
            )
            assert results == [0, 1, 4, 9]
            kinds = {i.kind for i in pool.incidents}
        assert "worker.hang" in kinds

    def test_injected_transient_error_is_retried(self):
        chaos = ChaosInjector(mode="raise", fail_on_task=0)
        with SharedPool(2, chaos=chaos, parallel=LADDER) as pool:
            assert pool.map(_square, range(3), op="build") == [0, 1, 4]
            assert [i.kind for i in pool.incidents] == ["task.retry"]

    def test_injected_permanent_error_propagates_typed(self):
        chaos = ChaosInjector(
            mode="raise",
            fail_on_task=0,
            error=PermanentIOError("injected permanent fault"),
        )
        with SharedPool(2, chaos=chaos, parallel=LADDER) as pool:
            with pytest.raises(PermanentIOError):
                pool.map(_square, range(3), op="build")
            assert any(i.kind == "task.error" for i in pool.incidents)

    def test_delay_mode_changes_nothing_but_wall_clock(self):
        chaos = ChaosInjector(mode="delay", fail_every=1, delay_seconds=0.01)
        with SharedPool(2, chaos=chaos, parallel=LADDER) as pool:
            assert pool.map(_square, range(4), op="build") == [0, 1, 4, 9]
            assert pool.incidents == []

    def test_poison_task_escalates_to_serial_in_process(self):
        chaos = ChaosInjector(
            mode="kill", fail_on_task=0, first_attempt_only=False
        )
        config = ParallelConfig(
            poison_threshold=2,
            max_task_retries=5,
            retry_backoff_seconds=0.0,
            supervise_interval_seconds=0.02,
        )
        with SharedPool(1, chaos=chaos, parallel=config) as pool:
            assert pool.map(_square, [6], op="build") == [36]
            escalations = [
                i for i in pool.incidents if i.kind == "task.escalated"
            ]
        assert len(escalations) == 1
        assert escalations[0].detail["reason"] == "poison"

    def test_escalation_raise_surfaces_worker_crash_error(self):
        chaos = ChaosInjector(
            mode="kill", fail_on_task=0, first_attempt_only=False
        )
        config = ParallelConfig(
            poison_threshold=1,
            escalation="raise",
            retry_backoff_seconds=0.0,
            supervise_interval_seconds=0.02,
        )
        with SharedPool(1, chaos=chaos, parallel=config) as pool:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.map(_square, [6], op="build")
            assert excinfo.value.op == "build"
            assert excinfo.value.task_index == 0
            assert pool.incidents  # the story survives the raise


# -- fit-level byte-identity matrix -------------------------------------------


@pytest.fixture(scope="module")
def grid_points():
    return ds1(scale=0.02, seed=0).points


def _config(cf_backend: str) -> BirchConfig:
    return BirchConfig(
        n_clusters=100,
        memory_bytes=256 * 1024,
        phase4_passes=1,
        random_seed=7,
        cf_backend=cf_backend,
        parallel=ParallelConfig(
            retry_backoff_seconds=0.0,
            supervise_interval_seconds=0.02,
            task_deadline_seconds=5.0,
        ),
    )


def _fingerprint(result) -> tuple:
    return (
        result.centroids.tobytes(),
        None if result.labels is None else result.labels.tobytes(),
        result.final_threshold,
        len(result.clusters),
        result.accounting(),
    )


@pytest.mark.parametrize("cf_backend", ["stable", "classic"])
@pytest.mark.parametrize("jobs", [2, 4])
class TestFitUnderChaos:
    def test_recovered_fit_is_byte_identical(
        self, grid_points, cf_backend, jobs
    ):
        with Birch(_config(cf_backend)) as clean:
            baseline = _fingerprint(clean.fit(grid_points, n_jobs=jobs))
            assert clean.parallel_incidents == []
        for mode in ("kill", "hang", "raise"):
            chaos = ChaosInjector(
                mode=mode, fail_every=3, hang_seconds=30.0
            )
            with Birch(
                _config(cf_backend), chaos_injector=chaos
            ) as estimator:
                result = estimator.fit(grid_points, n_jobs=jobs)
            assert _fingerprint(result) == baseline, (
                f"{mode} chaos changed the result at jobs={jobs}"
            )
            if chaos.faults_injected:
                assert result.parallel_incidents
                assert result.parallel_incidents == estimator.parallel_incidents

    def test_fatal_injection_raises_typed_with_incidents(
        self, grid_points, cf_backend, jobs
    ):
        chaos = ChaosInjector(
            mode="raise",
            fail_on_task=0,
            error=PermanentIOError("injected permanent fault"),
        )
        with Birch(_config(cf_backend), chaos_injector=chaos) as estimator:
            with pytest.raises(PermanentIOError):
                estimator.fit(grid_points, n_jobs=jobs)
            # The failed fit still reports what the supervisor saw.
            assert any(
                i["kind"] == "task.error"
                for i in estimator.parallel_incidents
            )


@pytest.mark.parametrize("cf_backend", ["stable", "classic"])
class TestSeedSweep:
    """CI sweeps ``--chaos-seed``: random kill schedules, same bytes."""

    def test_probability_kill_schedule_is_byte_identical(
        self, grid_points, cf_backend, chaos_seed
    ):
        with Birch(_config(cf_backend)) as clean:
            baseline = _fingerprint(clean.fit(grid_points, n_jobs=2))
        chaos = ChaosInjector(
            mode="kill", fail_probability=0.4, seed=chaos_seed, max_faults=4
        )
        with Birch(_config(cf_backend), chaos_injector=chaos) as estimator:
            result = estimator.fit(grid_points, n_jobs=2)
        assert _fingerprint(result) == baseline
        assert len(result.parallel_incidents) >= chaos.faults_injected


class TestFitResultSurface:
    def test_incidents_reset_between_fits(self, grid_points):
        chaos = ChaosInjector(mode="kill", fail_on_task=0)
        with Birch(_config("stable"), chaos_injector=chaos) as estimator:
            first = estimator.fit(grid_points, n_jobs=2)
            assert first.parallel_incidents
            # The injector is spent (one-shot): the second fit is clean
            # and must not inherit the first fit's incident log.
            second = estimator.fit(grid_points, n_jobs=2)
            assert second.parallel_incidents == []

    def test_improve_carries_incidents_forward(self, grid_points):
        chaos = ChaosInjector(mode="kill", fail_on_task=0)
        with Birch(_config("stable"), chaos_injector=chaos) as estimator:
            fitted = estimator.fit(grid_points, n_jobs=2)
            improved = estimator.improve(grid_points, passes=1)
            assert improved.parallel_incidents == fitted.parallel_incidents

    def test_single_process_fit_reports_no_incidents(self, grid_points):
        with Birch(_config("stable")) as estimator:
            result = estimator.fit(grid_points)
            assert result.parallel_incidents == []
