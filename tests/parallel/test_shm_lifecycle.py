"""Shared-memory lifecycle: no code path may strand a segment.

Satellite regression for this PR: a sharded fit that *raises* between
``SharedBlock`` creation and release used to leave the ``/dev/shm``
segment behind until interpreter exit (and, on an unclean exit, until
reboot).  These tests count live segments across every failure shape —
worker error, injected crash, double close, interpreter exit — and also
pin down the :class:`~repro.core.birch.Birch.close` hardening that
rides along (idempotent, safe mid-failure, atexit backstop for worker
processes).
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.datagen.presets import ds1
from repro.errors import PermanentIOError
from repro.parallel.chaos import ChaosInjector
from repro.parallel.config import ParallelConfig
from repro.parallel.shm import (
    SharedBlock,
    active_segment_count,
    active_segment_names,
    open_shard,
)

pytestmark = [pytest.mark.parallel, pytest.mark.chaos]


def _config() -> BirchConfig:
    return BirchConfig(
        n_clusters=100,
        memory_bytes=256 * 1024,
        phase4_passes=1,
        random_seed=7,
        parallel=ParallelConfig(
            retry_backoff_seconds=0.0, supervise_interval_seconds=0.02
        ),
    )


@pytest.fixture(scope="module")
def grid_points():
    return ds1(scale=0.02, seed=0).points


class TestSharedBlockRegistry:
    def test_blocks_register_and_unregister(self):
        base = active_segment_count()
        block = SharedBlock(np.arange(8.0).reshape(4, 2))
        assert active_segment_count() == base + 1
        assert block.name in active_segment_names()
        block.close()
        assert active_segment_count() == base
        assert block.name not in active_segment_names()

    def test_close_is_idempotent(self):
        block = SharedBlock(np.ones((3, 2)))
        block.close()
        block.close()
        assert active_segment_count() == 0

    def test_context_manager_releases_on_raise(self):
        with pytest.raises(RuntimeError):
            with SharedBlock(np.ones((3, 2))) as block:
                assert active_segment_count() == 1
                raise RuntimeError("mid-use failure")
        assert active_segment_count() == 0

    def test_segment_readable_until_closed(self):
        data = np.arange(10.0).reshape(5, 2)
        with SharedBlock(data) as block:
            rows, release = open_shard(block.slice_spec(1, 4))
            np.testing.assert_array_equal(rows, data[1:4])
            del rows
            release()

    def test_atexit_backstop_unlinks_forgotten_segments(self):
        # A process that creates a block and never closes it must still
        # leave /dev/shm clean at interpreter exit.
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.parallel.shm import SharedBlock
            block = SharedBlock(np.ones((64, 2)))
            print(block.name, flush=True)
            # no close(): atexit must unlink
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=60,
            check=True,
        )
        name = out.stdout.strip().splitlines()[-1].lstrip("/")
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{name}")


class TestRaisingFitLeaksNothing:
    def test_worker_error_mid_build_releases_the_segment(self, grid_points):
        # The regression: PermanentIOError from a worker mid-dispatch
        # propagates out of fit() while the batch's SharedBlock is
        # live.  The finally-block must release it anyway.
        chaos = ChaosInjector(
            mode="raise",
            fail_on_task=1,
            error=PermanentIOError("injected permanent fault"),
        )
        with Birch(_config(), chaos_injector=chaos) as estimator:
            before = active_segment_count()
            with pytest.raises(PermanentIOError):
                estimator.fit(grid_points, n_jobs=2)
            assert active_segment_count() == before, (
                f"raising fit leaked segments: {active_segment_names()}"
            )
            # The estimator stays usable: a clean refit succeeds.
            result = estimator.fit(grid_points, n_jobs=2)
            assert len(result.clusters) > 0
        assert active_segment_count() == 0

    def test_escalation_raise_releases_the_segment(self, grid_points):
        chaos = ChaosInjector(
            mode="kill", fail_on_task=0, first_attempt_only=False
        )
        config = _config()
        config.parallel = ParallelConfig(
            poison_threshold=1,
            escalation="raise",
            retry_backoff_seconds=0.0,
            supervise_interval_seconds=0.02,
        )
        from repro.errors import WorkerCrashError

        with Birch(config, chaos_injector=chaos) as estimator:
            with pytest.raises(WorkerCrashError):
                estimator.fit(grid_points, n_jobs=2)
        assert active_segment_count() == 0


class TestBirchClose:
    def test_close_before_any_fit(self):
        estimator = Birch(_config())
        estimator.close()
        estimator.close()

    def test_close_is_idempotent_after_fit(self, grid_points):
        estimator = Birch(_config())
        estimator.fit(grid_points, n_jobs=2)
        estimator.close()
        estimator.close()
        assert active_segment_count() == 0

    def test_fit_after_close_rebuilds_the_pool(self, grid_points):
        with Birch(_config()) as estimator:
            first = estimator.fit(grid_points, n_jobs=2)
            estimator.close()
            second = estimator.fit(grid_points, n_jobs=2)
            assert second.centroids.tobytes() == first.centroids.tobytes()

    def test_interpreter_exit_reaps_workers_without_close(self):
        # Satellite 2's backstop: a script that fits in parallel and
        # exits without calling close() must not leave live worker
        # processes (atexit pool registry + daemonic workers).
        script = textwrap.dedent(
            """
            import os
            from repro.core.birch import Birch
            from repro.core.config import BirchConfig
            from repro.datagen.presets import ds1
            points = ds1(scale=0.01, seed=0).points
            estimator = Birch(BirchConfig(
                n_clusters=50, memory_bytes=256 * 1024,
                phase4_passes=1, random_seed=7,
            ))
            estimator.fit(points, n_jobs=2)
            pool = estimator._pool
            pids = pool.worker_pids() if pool is not None else []
            print(" ".join(str(p) for p in pids), flush=True)
            # no close(): atexit must reap the fleet
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=120,
            check=True,
        )
        pids = [int(p) for p in out.stdout.split()]
        assert pids, "the fit should have spawned workers"
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
