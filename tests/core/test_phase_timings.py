"""JSON round-trip tests for the per-phase timing record."""

import json

from repro.core.birch import PhaseTimings


class TestPhaseTimings:
    def test_to_dict_lists_every_field(self):
        timings = PhaseTimings(
            phase1=1.5,
            phase2=0.25,
            phase3=0.75,
            phase4=0.5,
            phase1_ingest=1.0,
            phase1_rebuilds=0.5,
        )
        assert timings.to_dict() == {
            "phase1": 1.5,
            "phase2": 0.25,
            "phase3": 0.75,
            "phase4": 0.5,
            "phase1_ingest": 1.0,
            "phase1_rebuilds": 0.5,
        }

    def test_round_trip_through_json(self):
        timings = PhaseTimings(
            phase1=2.0,
            phase2=0.1,
            phase3=0.4,
            phase4=0.3,
            phase1_ingest=1.6,
            phase1_rebuilds=0.4,
        )
        restored = PhaseTimings.from_dict(
            json.loads(json.dumps(timings.to_dict()))
        )
        assert restored == timings
        assert restored.phase1_ingest == 1.6
        assert restored.phase1_rebuilds == 0.4

    def test_from_dict_tolerates_pre_split_payloads(self):
        # Bench JSON written before the ingest/rebuild split has only
        # the four phase fields; the split components default to zero.
        restored = PhaseTimings.from_dict(
            {"phase1": 1.0, "phase2": 0.5, "phase3": 0.25, "phase4": 0.125}
        )
        assert restored.phase1 == 1.0
        assert restored.phase1_ingest == 0.0
        assert restored.phase1_rebuilds == 0.0

    def test_total_ignores_split_components(self):
        timings = PhaseTimings(
            phase1=1.0, phase2=1.0, phase3=1.0, phase4=1.0,
            phase1_ingest=0.7, phase1_rebuilds=0.3,
        )
        assert timings.total == 4.0
        assert timings.phases_1_3 == 3.0
