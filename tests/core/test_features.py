"""Tests for the Clustering Feature — including the Additivity Theorem.

Property-based tests check that every CF-derived statistic matches a
brute-force computation over the raw points, which is exactly the
exactness claim of Section 4.1.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.features import CF

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


def points_arrays(min_rows: int = 1, max_rows: int = 30, dims: int = 3):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.just(dims)
        ),
        elements=finite,
    )


class TestConstruction:
    def test_from_point(self):
        cf = CF.from_point(np.array([3.0, 4.0]))
        assert cf.n == 1
        assert np.allclose(cf.ls, [3.0, 4.0])
        assert cf.ss == pytest.approx(25.0)

    def test_from_points_matches_manual_sum(self, rng):
        pts = rng.normal(size=(20, 4))
        cf = CF.from_points(pts)
        assert cf.n == 20
        assert np.allclose(cf.ls, pts.sum(axis=0))
        assert cf.ss == pytest.approx(float((pts**2).sum()))

    def test_from_points_accepts_single_row(self):
        cf = CF.from_points([1.0, 2.0])
        assert cf.n == 1
        assert cf.dimensions == 2

    def test_empty_is_identity(self):
        empty = CF.empty(3)
        cf = CF.from_points(np.ones((5, 3)))
        merged = cf.merge(empty)
        assert merged.allclose(cf)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            CF(-1, np.zeros(2), 0.0)

    def test_non_vector_ls_rejected(self):
        with pytest.raises(ValueError):
            CF(1, np.zeros((2, 2)), 0.0)


class TestAdditivity:
    """Theorem 4.1: CF(A) + CF(B) == CF(A ++ B) for disjoint A, B."""

    @given(a=points_arrays(), b=points_arrays())
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = CF.from_points(a).merge(CF.from_points(b))
        direct = CF.from_points(np.concatenate([a, b]))
        assert merged.n == direct.n
        assert np.allclose(merged.ls, direct.ls, atol=1e-6)
        assert merged.ss == pytest.approx(direct.ss, abs=1e-5, rel=1e-9)

    @given(pts=points_arrays(min_rows=2))
    @settings(max_examples=60, deadline=None)
    def test_subtract_inverts_merge(self, pts):
        whole = CF.from_points(pts)
        part = CF.from_points(pts[:1])
        rest = whole.subtract(part)
        rebuilt = rest.merge(part)
        assert rebuilt.allclose(whole, rtol=1e-7, atol=1e-6)

    def test_merge_inplace_matches_merge(self, rng):
        a = CF.from_points(rng.normal(size=(7, 2)))
        b = CF.from_points(rng.normal(size=(5, 2)))
        out_of_place = a.merge(b)
        a.merge_inplace(b)
        assert a.allclose(out_of_place)

    def test_iadd_operator(self, rng):
        a = CF.from_points(rng.normal(size=(3, 2)))
        b = CF.from_points(rng.normal(size=(4, 2)))
        expected = a + b
        a += b
        assert a.allclose(expected)

    def test_add_point_matches_merge_of_singleton(self, rng):
        pts = rng.normal(size=(6, 3))
        point = rng.normal(size=3)
        incremental = CF.from_points(pts)
        incremental.add_point(point)
        direct = CF.from_points(np.vstack([pts, point]))
        assert incremental.allclose(direct, rtol=1e-8, atol=1e-8)

    def test_dimension_mismatch_rejected(self):
        a = CF.from_points(np.zeros((2, 2)))
        b = CF.from_points(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_subtract_larger_rejected(self):
        a = CF.from_points(np.zeros((2, 2)))
        b = CF.from_points(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            a.subtract(b)


class TestDerivedStatistics:
    """Equations (1)-(3): centroid, radius, diameter from CFs alone."""

    @given(pts=points_arrays())
    @settings(max_examples=60, deadline=None)
    def test_centroid_matches_mean(self, pts):
        cf = CF.from_points(pts)
        assert np.allclose(cf.centroid, pts.mean(axis=0), atol=1e-7)

    @given(pts=points_arrays())
    @settings(max_examples=60, deadline=None)
    def test_radius_matches_bruteforce(self, pts):
        cf = CF.from_points(pts)
        centroid = pts.mean(axis=0)
        expected = math.sqrt(((pts - centroid) ** 2).sum(axis=1).mean())
        assert cf.radius == pytest.approx(expected, abs=1e-5, rel=1e-6)

    @given(pts=points_arrays(min_rows=2))
    @settings(max_examples=60, deadline=None)
    def test_diameter_matches_bruteforce(self, pts):
        cf = CF.from_points(pts)
        n = pts.shape[0]
        diffs = pts[:, None, :] - pts[None, :, :]
        total = (diffs**2).sum()
        expected = math.sqrt(total / (n * (n - 1)))
        assert cf.diameter == pytest.approx(expected, abs=1e-5, rel=1e-6)

    def test_singleton_diameter_is_zero(self):
        assert CF.from_point(np.array([1.0, 2.0])).diameter == 0.0

    def test_singleton_radius_is_zero(self):
        assert CF.from_point(np.array([1.0, 2.0])).radius == pytest.approx(0.0)

    def test_empty_statistics_rejected(self):
        empty = CF.empty(2)
        with pytest.raises(ValueError):
            _ = empty.centroid
        with pytest.raises(ValueError):
            _ = empty.radius
        with pytest.raises(ValueError):
            _ = empty.diameter

    @given(pts=points_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_squared_deviation_bruteforce(self, pts):
        cf = CF.from_points(pts)
        centroid = pts.mean(axis=0)
        expected = float(((pts - centroid) ** 2).sum())
        assert cf.sum_squared_deviation == pytest.approx(expected, abs=1e-5)

    def test_radius_nonnegative_under_cancellation(self):
        # Points far from origin stress SS/N - ||c||^2 cancellation.
        pts = np.full((10, 2), 1e6) + np.arange(10).reshape(-1, 1) * 1e-6
        cf = CF.from_points(pts)
        assert cf.radius >= 0.0
        assert cf.diameter >= 0.0


class TestCopy:
    def test_copy_is_independent(self, rng):
        a = CF.from_points(rng.normal(size=(4, 2)))
        b = a.copy()
        b.add_point(np.array([100.0, 100.0]))
        assert a.n == 4
        assert b.n == 5

    def test_repr_mentions_n(self):
        cf = CF.from_point(np.array([1.0, 1.0]))
        assert "n=1" in repr(cf)
