"""Equivalence suite for the vectorised Phase-1 fast path.

``CFTree.bulk_insert`` promises a tree **byte-identical** to the
per-point ``insert_points`` loop — same structure export, same leaf
chain, same I/O ledger — on both CF backends, both threshold kinds,
and any chunking of the input.  These tests are the enforcement of
that promise, plus the sharded ``fit(n_jobs=N)`` parity checks (same
cluster count, deterministic, conservation ledger balanced — sharded
builds change insertion order, so they claim quality parity rather
than byte identity) and the ``insert_points`` ergonomics.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.distances import (
    Metric,
    distances_to_set,
    gathered_point_distances,
    stable_distances_to_set,
    stable_gathered_point_distances,
)
from repro.core.features import CF, StableCF
from repro.core.tree import CFTree, ThresholdKind
from repro.datagen.presets import ds1
from repro.pagestore.iostats import IOStats
from repro.pagestore.page import PageLayout

BACKENDS = ("classic", "stable")
KINDS = (ThresholdKind.DIAMETER, ThresholdKind.RADIUS)
CHUNKS = (1, 7, 4096)


def make_tree(
    *,
    dimensions: int = 2,
    threshold: float = 0.5,
    page_size: int = 128,
    cf_backend: str = "classic",
    threshold_kind: ThresholdKind = ThresholdKind.DIAMETER,
) -> CFTree:
    layout = PageLayout(page_size=page_size, dimensions=dimensions)
    return CFTree(
        layout,
        threshold=threshold,
        cf_backend=cf_backend,
        threshold_kind=threshold_kind,
        stats=IOStats(),
    )


def assert_identical_trees(a: CFTree, b: CFTree) -> None:
    """Byte-for-byte equality: structure, entry floats, chain, ledger."""
    sa, sb = a.export_structure(), b.export_structure()
    assert sa.keys() == sb.keys()
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), f"structure mismatch in {key}"
    assert a.points == b.points
    assert a.stats is not None and b.stats is not None
    assert a.stats.summary() == b.stats.summary()
    chain_a = [[cf.n for cf in leaf.iter_entry_cfs()] for leaf in a.leaves()]
    chain_b = [[cf.n for cf in leaf.iter_entry_cfs()] for leaf in b.leaves()]
    assert chain_a == chain_b


def clustered_points(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """A clustery stream (the regime bulk ingest is built for)."""
    centers = rng.uniform(-10.0, 10.0, size=(max(4, n // 50), d))
    idx = rng.integers(0, centers.shape[0], size=n)
    return centers[idx] + rng.normal(0.0, 0.4, size=(n, d))


class TestBulkByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_bulk_equals_scalar_on_clustered_stream(self, backend, kind, chunk):
        rng = np.random.default_rng(hash((backend, kind.value, chunk)) % 2**32)
        points = clustered_points(rng, 600, 2)
        scalar = make_tree(cf_backend=backend, threshold_kind=kind)
        bulk = make_tree(cf_backend=backend, threshold_kind=kind)
        scalar.insert_points(points)
        for start in range(0, points.shape[0], chunk):
            took = 0
            block = points[start : start + chunk]
            while took < block.shape[0]:
                took += bulk.bulk_insert(block[took:])
        assert_identical_trees(scalar, bulk)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("trial", range(3))
    def test_bulk_equals_scalar_random_geometry(self, backend, trial):
        """Random d, threshold and page size (hence random B and L)."""
        rng = np.random.default_rng(1000 * trial + (backend == "stable"))
        d = int(rng.integers(1, 6))
        threshold = float(rng.uniform(0.05, 2.0))
        page_size = int(rng.choice([96, 160, 256, 512]))
        points = clustered_points(rng, 400, d)
        scalar = make_tree(
            dimensions=d,
            threshold=threshold,
            page_size=page_size,
            cf_backend=backend,
        )
        bulk = make_tree(
            dimensions=d,
            threshold=threshold,
            page_size=page_size,
            cf_backend=backend,
        )
        scalar.insert_points(points)
        consumed = 0
        while consumed < points.shape[0]:
            consumed += bulk.bulk_insert(points[consumed:])
        assert_identical_trees(scalar, bulk)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stop_after_fallback_consumes_prefix_only(self, backend):
        rng = np.random.default_rng(7)
        points = clustered_points(rng, 300, 2)
        tree = make_tree(cf_backend=backend, threshold=0.2)
        took = tree.bulk_insert(points, stop_after_fallback=True)
        assert 0 < took <= points.shape[0]
        assert tree.points == took

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_rows_cap(self, backend):
        rng = np.random.default_rng(8)
        points = clustered_points(rng, 200, 2)
        tree = make_tree(cf_backend=backend)
        took = tree.bulk_insert(points, max_rows=57)
        assert took == 57
        assert tree.points == 57


class TestGatheredKernels:
    """The validation kernels must be bitwise equal to the scalar ones."""

    @pytest.mark.parametrize("metric", list(Metric))
    def test_classic_gathered_matches_per_probe(self, metric):
        rng = np.random.default_rng(3)
        w, k, d = 17, 5, 3
        pts = rng.normal(size=(w, d))
        norms = np.einsum("ij,ij->i", pts, pts)
        ns = rng.integers(1, 20, size=(w, k)).astype(np.float64)
        ls = rng.normal(size=(w, k, d)) * ns[:, :, None]
        ss = np.einsum("rkj,rkj->rk", ls, ls) / ns + rng.uniform(
            0.0, 5.0, size=(w, k)
        )
        got = gathered_point_distances(pts, norms, ns, ls, ss, metric)
        for r in range(w):
            probe = CF(1, pts[r], float(norms[r]))
            expect = distances_to_set(probe, ns[r], ls[r], ss[r], metric)
            assert np.array_equal(got[r], expect)

    @pytest.mark.parametrize("metric", list(Metric))
    def test_stable_gathered_matches_per_probe(self, metric):
        rng = np.random.default_rng(4)
        w, k, d = 17, 5, 3
        pts = rng.normal(size=(w, d))
        ns = rng.integers(1, 20, size=(w, k)).astype(np.float64)
        means = rng.normal(size=(w, k, d))
        ssds = rng.uniform(0.0, 5.0, size=(w, k))
        got = stable_gathered_point_distances(pts, ns, means, ssds, metric)
        for r in range(w):
            probe = StableCF(1, pts[r], 0.0)
            expect = stable_distances_to_set(
                probe, ns[r], means[r], ssds[r], metric
            )
            assert np.array_equal(got[r], expect)


class TestInsertPointsErgonomics:
    def test_single_point_promoted(self):
        tree = make_tree()
        tree.insert_points(np.array([1.0, 2.0]))
        assert tree.points == 1
        assert np.allclose(tree.leaf_entries()[0].centroid, [1.0, 2.0])

    def test_single_point_promoted_bulk(self):
        tree = make_tree()
        took = tree.bulk_insert(np.array([1.0, 2.0]))
        assert took == 1
        assert tree.points == 1

    def test_dimension_error_names_layout(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="page layout"):
            tree.insert_points(np.zeros((4, 3)))

    def test_shape_error_reports_got_shape(self):
        tree = make_tree()
        with pytest.raises(ValueError, match=r"\(4, 3\)"):
            tree.insert_points(np.zeros((4, 3)))

    def test_wrong_single_point_length_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError, match=r"\(2,\)"):
            tree.insert_points(np.zeros(3))


class TestShardedFit:
    @pytest.fixture(scope="class")
    def grid(self):
        return ds1(scale=0.03, seed=0).points  # 3,000 points, K=100 grid

    def config(self, **kwargs) -> BirchConfig:
        return BirchConfig(
            n_clusters=100, memory_bytes=256 * 1024, **kwargs
        )

    def test_deterministic_for_fixed_seed_and_jobs(self, grid):
        r1 = Birch(self.config()).fit(grid, n_jobs=2)
        r2 = Birch(self.config()).fit(grid, n_jobs=2)
        assert np.array_equal(r1.centroids, r2.centroids)
        assert r1.io == r2.io
        assert r1.final_threshold == r2.final_threshold

    def test_quality_parity_with_sequential(self, grid):
        seq = Birch(self.config()).fit(grid)
        par = Birch(self.config()).fit(grid, n_jobs=3)
        assert par.n_clusters == seq.n_clusters
        # Each sharded centroid must land near a sequential one (well
        # under the grid spacing of sqrt(2)).
        d = np.linalg.norm(
            seq.centroids[:, None, :] - par.centroids[None, :, :], axis=2
        )
        assert float(d.min(axis=0).max()) < 0.5

    def test_conservation_ledger_balances(self, grid):
        result = Birch(self.config()).fit(grid, n_jobs=4)
        assert result.conservation_ok
        ledger = result.accounting()
        assert ledger["fed"] == grid.shape[0]

    def test_config_n_jobs_used_by_default(self, grid):
        result = Birch(self.config(n_jobs=2)).fit(grid)
        explicit = Birch(self.config()).fit(grid, n_jobs=2)
        assert np.array_equal(result.centroids, explicit.centroids)

    def test_invalid_n_jobs_rejected(self, grid):
        with pytest.raises(ValueError, match="n_jobs"):
            Birch(self.config()).fit(grid, n_jobs=0)
        with pytest.raises(ValueError, match="n_jobs"):
            BirchConfig(n_clusters=2, n_jobs=0)

    def test_phase_timers_populated(self, grid):
        result = Birch(self.config()).fit(grid, n_jobs=2)
        t = result.timings
        assert t.phase1_ingest > 0.0
        assert t.phase1_ingest + t.phase1_rebuilds <= t.phase1 + 1e-6


class TestCheckpointOnBulkPath:
    def test_bulk_built_stream_checkpoints_and_resumes(self, tmp_path):
        """Kill a bulk-ingesting stream mid-scan; resume must continue
        bit-for-bit (the checkpoint cadence caps each bulk call)."""
        rng = np.random.default_rng(11)
        points = clustered_points(rng, 2_000, 2)
        path = tmp_path / "ck.npz"
        config = BirchConfig(
            n_clusters=10,
            memory_bytes=256 * 1024,
            checkpoint_every_points=500,
            checkpoint_path=str(path),
            phase4_passes=0,
        )
        straight = Birch(config)
        straight.partial_fit(points)
        interrupted = Birch(config)
        interrupted.partial_fit(points[:1_000])
        assert path.exists()
        resumed = Birch.resume(path)
        fed = resumed.points_seen
        assert fed % 500 == 0 and 0 < fed <= 1_000
        resumed.partial_fit(points[fed:])
        assert resumed.points_seen == straight.points_seen
        a = straight.tree.export_structure()
        b = resumed.tree.export_structure()
        for key in a:
            assert np.array_equal(a[key], b[key]), key
        assert straight.finalize().n_clusters == resumed.finalize().n_clusters
