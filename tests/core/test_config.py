"""Tests for BirchConfig validation and defaults."""

import pytest

from repro.core.config import BirchConfig
from repro.core.distances import Metric


class TestDefaults:
    def test_paper_defaults(self):
        config = BirchConfig(n_clusters=100)
        assert config.memory_bytes == 80 * 1024
        assert config.page_size == 1024
        assert config.metric is Metric.D2_AVG_INTERCLUSTER
        assert config.initial_threshold == 0.0
        assert config.outlier_handling
        assert config.phase3_input_limit == 1000
        assert config.phase4_passes == 1

    def test_disk_defaults_to_20_percent(self):
        config = BirchConfig(n_clusters=10)
        assert config.effective_disk_bytes == config.memory_bytes // 5

    def test_explicit_disk_respected(self):
        config = BirchConfig(n_clusters=10, disk_bytes=4096)
        assert config.effective_disk_bytes == 4096

    def test_metric_accepts_string(self):
        config = BirchConfig(n_clusters=5, metric="d4")
        assert config.metric is Metric.D4_VARIANCE_INCREASE


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clusters": 0},
            {"n_clusters": 5, "memory_bytes": 0},
            {"n_clusters": 5, "page_size": 0},
            {"n_clusters": 5, "disk_bytes": -1},
            {"n_clusters": 5, "initial_threshold": -0.1},
            {"n_clusters": 5, "phase3_algorithm": "dbscan"},
            {"n_clusters": 5, "phase3_input_limit": 4},
            {"n_clusters": 5, "phase4_passes": -1},
            {"n_clusters": 5, "phase4_outlier_factor": 0.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BirchConfig(**kwargs)

    def test_phase3_limit_must_cover_k(self):
        BirchConfig(n_clusters=5, phase3_input_limit=5)  # boundary is legal
        with pytest.raises(ValueError):
            BirchConfig(n_clusters=6, phase3_input_limit=5)
