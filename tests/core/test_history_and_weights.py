"""Tests for the Phase 3 merge history and weighted partial_fit."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.features import CF
from repro.core.global_clustering import agglomerative_cf


class TestMergeHistory:
    def test_history_length(self, rng):
        entries = [CF.from_point(rng.normal(size=2)) for _ in range(12)]
        result = agglomerative_cf(entries, n_clusters=3)
        # m entries merged down to k clusters takes m - k merges.
        assert len(result.history) == 9

    def test_history_indices_valid(self, rng):
        entries = [CF.from_point(rng.normal(size=2)) for _ in range(10)]
        result = agglomerative_cf(entries, n_clusters=2)
        for step in result.history:
            assert 0 <= step.left < 10
            assert 0 <= step.right < 10
            assert step.left != step.right
            assert step.distance >= 0
            assert step.merged_points >= 2

    def test_final_merge_covers_everything_at_k1(self, rng):
        entries = [CF.from_point(rng.normal(size=2)) for _ in range(8)]
        result = agglomerative_cf(entries, n_clusters=1)
        assert result.history[-1].merged_points == 8

    def test_first_merge_is_globally_closest_pair(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0], [9.0, 0.0]])
        entries = [CF.from_point(p) for p in pts]
        result = agglomerative_cf(entries, n_clusters=1)
        first = result.history[0]
        assert {first.left, first.right} == {0, 1}

    def test_no_history_when_k_equals_m(self, rng):
        entries = [CF.from_point(rng.normal(size=2)) for _ in range(4)]
        result = agglomerative_cf(entries, n_clusters=4)
        assert result.history == []

    def test_merged_points_monotone_overall_total(self, rng):
        """Each step's merged cluster never exceeds the total points."""
        entries = [CF.from_points(rng.normal(size=(3, 2))) for _ in range(10)]
        result = agglomerative_cf(entries, n_clusters=2)
        total = sum(cf.n for cf in entries)
        assert all(step.merged_points <= total for step in result.history)


class TestWeightedPartialFit:
    def test_weight_w_equals_w_copies(self, rng):
        points = rng.normal(size=(30, 2))
        weights = rng.integers(1, 5, size=30)

        weighted = Birch(BirchConfig(n_clusters=2, phase4_passes=0))
        weighted.partial_fit(points, weights=weights)

        expanded = np.repeat(points, weights, axis=0)
        copies = Birch(BirchConfig(n_clusters=2, phase4_passes=0))
        copies.partial_fit(expanded)

        a = weighted.tree.summary_cf()
        b = copies.tree.summary_cf()
        assert a.n == b.n
        assert np.allclose(a.ls, b.ls, rtol=1e-9)
        assert a.ss == pytest.approx(b.ss, rel=1e-9)

    def test_points_seen_counts_weights(self, rng):
        points = rng.normal(size=(10, 2))
        estimator = Birch(BirchConfig(n_clusters=2, phase4_passes=0))
        estimator.partial_fit(points, weights=np.full(10, 3))
        assert estimator.points_seen == 30

    def test_weighted_centroid_pull(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        estimator = Birch(BirchConfig(n_clusters=1, phase4_passes=0))
        estimator.partial_fit(points, weights=np.array([9, 1]))
        result = estimator.finalize()
        # Weighted mean: (9*0 + 1*10) / 10 = 1.0
        assert result.centroids[0][0] == pytest.approx(1.0)

    def test_bad_weights_rejected(self, rng):
        points = rng.normal(size=(5, 2))
        estimator = Birch(BirchConfig(n_clusters=2))
        with pytest.raises(ValueError):
            estimator.partial_fit(points, weights=np.ones(4))
        with pytest.raises(ValueError):
            estimator.partial_fit(points, weights=np.zeros(5))
