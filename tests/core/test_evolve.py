"""Evolving-stream robustness: CF decay, window forgetting, drift.

Everything here runs on the stable backend (the classic ``(N, LS, SS)``
representation cannot carry fractional decayed mass and raises
:class:`UnsupportedBackendError` instead — also covered below).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.checkpoint import load_checkpoint, write_checkpoint
from repro.core.config import BirchConfig
from repro.core.evolve import DriftMonitor, EpochBuckets
from repro.core.features import StableCF
from repro.errors import TransientIOError, UnsupportedBackendError
from repro.pagestore.faults import FaultInjector

pytestmark = pytest.mark.evolve


def _batch(center, n=200, d=2, seed=0, std=0.3):
    rng = np.random.default_rng(seed)
    return rng.normal(center, std, (n, d))


class TestCFDecay:
    def test_decay_halves_weighted_mass_per_half_life(self):
        birch = Birch(BirchConfig(n_clusters=2, decay_half_life=2.0))
        birch.partial_fit(_batch((0.0, 0.0), n=400))
        tree = birch._tree
        tree.settle_decay()
        before = float(tree.summary_cf().n)
        tree.advance_decay_clock(2)  # one half-life
        tree.settle_decay()
        after = float(tree.summary_cf().n)
        assert after == pytest.approx(before / 2.0, rel=1e-9)

    def test_decay_preserves_centroids(self):
        # Decay scales every weight uniformly, so means — and therefore
        # the routing geometry — are invariant.
        birch = Birch(BirchConfig(n_clusters=2, decay_half_life=3.0))
        birch.partial_fit(_batch((5.0, -1.0), n=300))
        tree = birch._tree
        tree.settle_decay()
        before = tree.summary_cf().centroid.copy()
        tree.advance_decay_clock(4)
        tree.settle_decay()
        np.testing.assert_allclose(
            tree.summary_cf().centroid, before, rtol=0, atol=1e-12
        )

    def test_decay_requires_stable_backend(self):
        with pytest.raises(UnsupportedBackendError):
            BirchConfig(
                n_clusters=2, cf_backend="classic", decay_half_life=1.0
            )

    def test_decay_requires_sequential_stream(self):
        with pytest.raises(ValueError, match="n_jobs"):
            BirchConfig(n_clusters=2, decay_half_life=1.0, n_jobs=4)

    def test_decay_run_conserves_raw_points(self):
        birch = Birch(BirchConfig(n_clusters=3, decay_half_life=2.0))
        for i in range(5):
            birch.partial_fit(_batch((i, i), seed=i))
        result = birch.finalize()
        ledger = result.accounting()
        assert result.conservation_ok
        assert ledger["clustered"] == ledger["fed"] == 1000
        assert ledger["forgotten"] == 0
        # Weighted mass has faded; the gap is reported separately.
        assert result.decayed_mass > 0
        birch.tree.check_invariants()


class TestWindowForgetting:
    def test_forget_before_balances_ledger(self):
        birch = Birch(BirchConfig(n_clusters=2, epoch_buckets=5))
        for i in range(5):
            birch.partial_fit(_batch((4.0 * i, 0.0), seed=i))
        stats = birch.forget_before(3)
        assert stats["buckets_retired"] == 3
        assert stats["forgotten_points"] > 0
        result = birch.finalize()
        ledger = result.accounting()
        assert result.conservation_ok
        assert ledger["forgotten"] == result.forgotten_points
        assert ledger["clustered"] + ledger["forgotten"] == ledger["fed"]

    def test_forget_before_removes_stale_territory(self):
        # Old cluster A, then new cluster B far away; forgetting A's
        # epochs must leave the model describing B.
        birch = Birch(BirchConfig(n_clusters=1, epoch_buckets=4))
        for i in range(2):
            birch.partial_fit(_batch((0.0, 0.0), seed=i))
        for i in range(2, 4):
            birch.partial_fit(_batch((50.0, 50.0), seed=i))
        birch.forget_before(2)
        result = birch.finalize()
        assert result.conservation_ok
        # Bucket deltas are bounded summaries, so the subtraction is
        # approximate — but the centroid must land decisively in B's
        # territory, not between the two.
        centroid = result.centroids[0]
        to_b = np.linalg.norm(centroid - np.array([50.0, 50.0]))
        to_a = np.linalg.norm(centroid)
        assert to_b < 10.0
        assert to_a > 4 * to_b

    def test_window_overflow_retires_oldest_bucket(self):
        birch = Birch(BirchConfig(n_clusters=2, epoch_buckets=2))
        for i in range(4):
            birch.partial_fit(_batch((3.0 * i, 0.0), seed=i))
        # Two buckets live, two evicted and retired automatically.
        assert birch.points_forgotten > 0
        assert birch._epoch_buckets.size == 2
        result = birch.finalize()
        assert result.conservation_ok
        birch.tree.check_invariants()

    def test_forget_requires_epoch_buckets(self):
        birch = Birch(BirchConfig(n_clusters=2))
        birch.partial_fit(_batch((0.0, 0.0)))
        with pytest.raises(ValueError, match="epoch_buckets"):
            birch.forget_before(1)

    def test_forget_with_decay_converts_weighted_to_raw(self):
        birch = Birch(
            BirchConfig(n_clusters=2, decay_half_life=2.0, epoch_buckets=6)
        )
        for i in range(4):
            birch.partial_fit(_batch((i, 0.0), seed=i))
        stats = birch.forget_before(2)
        # Raw points forgotten never exceed the raw mass the retired
        # buckets tagged, despite the decayed weights involved.
        assert 0 < stats["forgotten_points"] <= stats["requested_points"]
        result = birch.finalize()
        assert result.conservation_ok


class TestSubtractCF:
    def test_subtraction_never_exceeds_request(self):
        # A delta whose geometry matches no entry (far-off mean) must
        # fall back to pro-rata withdrawal, not whole-entry removal:
        # over-forgetting amplified through the decay factor is how a
        # single retirement can hollow out the tree.
        birch = Birch(BirchConfig(n_clusters=2, epoch_buckets=8))
        birch.partial_fit(_batch((0.0, 0.0), n=500))
        tree = birch.tree
        request = 50.0
        delta = StableCF(request, np.array([30.0, -30.0]), 1.0)
        stats = tree.subtract_cf(delta)
        assert stats["subtracted_n"] <= request + 1e-6
        tree.check_invariants()

    def test_subtract_requires_stable_backend(self):
        birch = Birch(BirchConfig(n_clusters=2, cf_backend="classic"))
        birch.partial_fit(_batch((0.0, 0.0)))
        delta = StableCF(1.0, np.zeros(2), 0.0)
        with pytest.raises(UnsupportedBackendError):
            birch.tree.subtract_cf(delta)


class TestDriftDetection:
    def _run(self, policy, jump=True, **config):
        birch = Birch(
            BirchConfig(
                n_clusters=2,
                epoch_buckets=8,
                drift_policy=policy,
                drift_window=4,
                **config,
            )
        )
        for i in range(12):
            center = (40.0, 40.0) if (jump and i >= 8) else (0.0, 0.0)
            birch.partial_fit(_batch(center, seed=i))
        return birch, birch.finalize()

    def test_alarm_fires_on_centroid_jump(self):
        _, result = self._run("alarm")
        assert result.drift is not None
        assert result.drift["alarms"] >= 1
        assert "centroid_velocity" in result.drift["last_alarm_reasons"]

    def test_stationary_stream_stays_quiet(self):
        _, result = self._run("alarm", jump=False)
        assert result.drift is not None
        assert result.drift["alarms"] == 0

    def test_auto_decay_policy_ages_the_clock(self):
        birch, result = self._run("auto_decay", decay_half_life=3.0)
        assert result.drift["alarms"] >= 1
        # One extra clock tick per alarm on top of the per-epoch tick.
        assert birch.tree.decay_clock == birch.epoch + result.drift["alarms"]
        assert result.conservation_ok

    def test_recondense_policy_keeps_conservation(self):
        birch, result = self._run("recondense")
        assert result.drift["alarms"] >= 1
        assert result.conservation_ok
        birch.tree.check_invariants()

    def test_auto_decay_requires_half_life(self):
        with pytest.raises(ValueError, match="auto_decay"):
            BirchConfig(n_clusters=2, drift_policy="auto_decay")

    def test_monitor_state_roundtrip(self):
        monitor = DriftMonitor(window=4)
        rng = np.random.default_rng(0)
        for epoch in range(6):
            monitor.observe_epoch(epoch, rng.normal(size=2), epoch)
        clone = DriftMonitor(window=4)
        clone.load_state(monitor.state_dict())
        assert clone.state_dict() == monitor.state_dict()
        assert clone.summary() == monitor.summary()


class TestEpochBuckets:
    def test_record_and_retire(self):
        buckets = EpochBuckets(max_buckets=3, max_entries=4)
        rng = np.random.default_rng(1)
        for epoch in range(3):
            for _ in range(10):
                buckets.record(epoch, 1.0, rng.normal(size=2), 0.0)
        assert buckets.size == 3
        assert buckets.points == pytest.approx(30.0)
        retired = buckets.retire_before(2)
        assert [b.epoch for b in retired] == [0, 1]
        assert buckets.epochs() == [2]

    def test_clock_cannot_rewind(self):
        buckets = EpochBuckets(max_buckets=3, max_entries=4)
        buckets.record(5, 1.0, np.zeros(2), 0.0)
        with pytest.raises(ValueError, match="rewind"):
            buckets.record(4, 1.0, np.zeros(2), 0.0)

    def test_entry_cap_merges_not_drops(self):
        buckets = EpochBuckets(max_buckets=2, max_entries=3)
        rng = np.random.default_rng(2)
        for _ in range(20):
            buckets.record(0, 1.0, rng.normal(size=2), 0.0)
        (bucket,) = buckets.buckets
        assert bucket.size <= 3
        assert bucket.points == pytest.approx(20.0)

    def test_array_roundtrip(self):
        buckets = EpochBuckets(max_buckets=4, max_entries=8)
        rng = np.random.default_rng(3)
        for epoch in range(3):
            for _ in range(5):
                buckets.record(epoch, rng.uniform(0.5, 2.0), rng.normal(size=3), rng.uniform())
        arrays = buckets.to_arrays(3)
        clone = EpochBuckets.from_arrays(arrays, max_buckets=4, max_entries=8)
        assert clone.epochs() == buckets.epochs()
        assert clone.points == pytest.approx(buckets.points)
        for a, b in zip(clone.buckets, buckets.buckets):
            for (na, ma, sa), (nb, mb, sb) in zip(
                a.iter_deltas(), b.iter_deltas()
            ):
                assert na == nb and sa == sb
                np.testing.assert_array_equal(ma, mb)


def _evolve_stream(i: int) -> np.ndarray:
    rng = np.random.default_rng(100 + i)
    return rng.normal((i % 5, i % 5), 0.3, (120, 2))


def _evolve_config() -> BirchConfig:
    return BirchConfig(
        n_clusters=3,
        decay_half_life=3.0,
        epoch_buckets=4,
        drift_policy="alarm",
    )


class TestKillResumeAcrossForget:
    def test_resume_across_forget_boundary_is_bit_identical(
        self, tmp_path: Path
    ):
        ckpt = tmp_path / "evolve.ckpt"

        straight = Birch(_evolve_config())
        for i in range(8):
            straight.partial_fit(_evolve_stream(i))
            if i == 4:
                straight.forget_before(3)
                write_checkpoint(ckpt, straight)
        expected = straight.finalize()

        resumed = load_checkpoint(ckpt)
        assert resumed.epoch == 5
        assert resumed.tree.decay_clock == 5
        # Bucket state at the checkpoint: epochs 0-2 were retired by
        # the forget_before, leaving the 3..4 window live.
        assert resumed._epoch_buckets.epochs() == [3, 4]
        for i in range(5, 8):
            resumed.partial_fit(_evolve_stream(i))
        actual = resumed.finalize()

        np.testing.assert_array_equal(expected.centroids, actual.centroids)
        assert expected.accounting() == actual.accounting()
        assert expected.conservation_ok and actual.conservation_ok
        for a, b in zip(expected.subclusters, actual.subclusters):
            assert a.n == b.n
            np.testing.assert_array_equal(a.centroid, b.centroid)

    def test_periodic_checkpointing_never_perturbs_results(
        self, tmp_path: Path
    ):
        """Checkpoint cadence must not leak into the clustering output.

        Decay settles eagerly at every clock advance, so the snapshot's
        settle is a no-op and periodic archives are pure observation —
        a run writing a checkpoint every 150 points is bit-identical to
        one writing none.  (Regression: the snapshot used to settle
        pending lazy decay on the live tree, so *when* checkpoints
        fired chunked the decay factors differently and shifted results
        at the last bit.)
        """
        plain = Birch(_evolve_config())
        observed_cfg = _evolve_config()
        observed_cfg.checkpoint_path = str(tmp_path / "periodic.ckpt")
        observed_cfg.checkpoint_every_points = 150
        observed = Birch(observed_cfg)
        for i in range(8):
            plain.partial_fit(_evolve_stream(i))
            observed.partial_fit(_evolve_stream(i))
            if i == 4:
                plain.forget_before(3)
                observed.forget_before(3)
        expected, actual = plain.finalize(), observed.finalize()
        np.testing.assert_array_equal(expected.centroids, actual.centroids)
        assert expected.accounting() == actual.accounting()
        assert plain.tree.threshold == observed.tree.threshold

    def test_checkpoint_write_faults_after_forget_are_survivable(
        self, tmp_path: Path
    ):
        ckpt = tmp_path / "faulty.ckpt"
        birch = Birch(_evolve_config())
        for i in range(5):
            birch.partial_fit(_evolve_stream(i))
        birch.forget_before(3)

        # A transient fault on every write fails a 1-attempt call...
        with pytest.raises(TransientIOError):
            write_checkpoint(
                ckpt,
                birch,
                injector=FaultInjector(fail_every=1),
                attempts=1,
                sleep=lambda _: None,
            )
        assert not ckpt.exists()

        # ...and heals under retry; the resumed state matches exactly.
        injector = FaultInjector(fail_every=1, max_faults=1)
        write_checkpoint(
            ckpt, birch, injector=injector, attempts=4, sleep=lambda _: None
        )
        assert injector.faults_injected == 1
        resumed = load_checkpoint(ckpt)
        assert resumed.epoch == birch.epoch
        assert resumed.points_forgotten == birch.points_forgotten
        np.testing.assert_array_equal(
            resumed.tree.summary_cf().centroid,
            birch.tree.summary_cf().centroid,
        )
