"""Tests for CFNode entry storage and searching."""

import numpy as np
import pytest

from repro.core.distances import Metric
from repro.core.features import CF
from repro.core.node import CFNode
from repro.pagestore.page import PageLayout


@pytest.fixture
def leaf(layout_2d: PageLayout) -> CFNode:
    return CFNode(layout_2d, is_leaf=True)


@pytest.fixture
def nonleaf(layout_2d: PageLayout) -> CFNode:
    return CFNode(layout_2d, is_leaf=False)


def cf_at(x: float, y: float, n: int = 1) -> CF:
    pts = np.tile([x, y], (n, 1))
    return CF.from_points(pts)


class TestCapacity:
    def test_capacity_from_layout(self, layout_2d, leaf, nonleaf):
        assert leaf.capacity == layout_2d.leaf_capacity
        assert nonleaf.capacity == layout_2d.branching_factor

    def test_is_full(self, leaf):
        for i in range(leaf.capacity):
            leaf.append_entry(cf_at(float(i), 0.0))
        assert leaf.is_full
        with pytest.raises(ValueError, match="full"):
            leaf.append_entry(cf_at(99.0, 0.0))


class TestEntryMutation:
    def test_append_and_read_back(self, leaf):
        cf = cf_at(1.0, 2.0, n=3)
        idx = leaf.append_entry(cf)
        assert leaf.size == 1
        assert leaf.entry_cf(idx).allclose(cf)

    def test_leaf_rejects_child(self, leaf, layout_2d):
        child = CFNode(layout_2d, is_leaf=True)
        with pytest.raises(ValueError):
            leaf.append_entry(cf_at(0.0, 0.0), child)

    def test_nonleaf_requires_child(self, nonleaf):
        with pytest.raises(ValueError):
            nonleaf.append_entry(cf_at(0.0, 0.0))

    def test_add_to_entry_is_cf_addition(self, leaf):
        leaf.append_entry(cf_at(1.0, 1.0, n=2))
        leaf.add_to_entry(0, cf_at(3.0, 3.0, n=2))
        expected = cf_at(1.0, 1.0, n=2).merge(cf_at(3.0, 3.0, n=2))
        assert leaf.entry_cf(0).allclose(expected)

    def test_set_entry_overwrites(self, leaf):
        leaf.append_entry(cf_at(1.0, 1.0))
        replacement = cf_at(5.0, 5.0, n=4)
        leaf.set_entry(0, replacement)
        assert leaf.entry_cf(0).allclose(replacement)

    def test_remove_entry_compacts(self, leaf):
        for i in range(4):
            leaf.append_entry(cf_at(float(i), 0.0))
        leaf.remove_entry(1)
        assert leaf.size == 3
        xs = sorted(float(leaf.entry_cf(i).ls[0]) for i in range(3))
        assert xs == [0.0, 2.0, 3.0]

    def test_remove_entry_keeps_children_aligned(self, nonleaf, layout_2d):
        children = [CFNode(layout_2d, is_leaf=True) for _ in range(3)]
        for i, child in enumerate(children):
            nonleaf.append_entry(cf_at(float(i), 0.0), child)
        nonleaf.remove_entry(0)
        assert nonleaf.size == 2
        assert len(nonleaf.children) == 2
        # Last child swapped into slot 0.
        assert nonleaf.children[0] is children[2]
        assert float(nonleaf.entry_cf(0).ls[0]) == 2.0

    def test_clear(self, leaf):
        leaf.append_entry(cf_at(1.0, 1.0))
        leaf.clear()
        assert leaf.size == 0
        assert leaf.summary_cf().n == 0

    def test_index_out_of_range(self, leaf):
        leaf.append_entry(cf_at(0.0, 0.0))
        with pytest.raises(IndexError):
            leaf.entry_cf(1)
        with pytest.raises(IndexError):
            leaf.remove_entry(-1)


class TestSummary:
    def test_summary_is_sum_of_entries(self, leaf, rng):
        cfs = [CF.from_points(rng.normal(size=(3, 2))) for _ in range(5)]
        for cf in cfs:
            leaf.append_entry(cf)
        total = cfs[0].copy()
        for cf in cfs[1:]:
            total.merge_inplace(cf)
        assert leaf.summary_cf().allclose(total, rtol=1e-9, atol=1e-9)

    def test_views_reflect_live_entries_only(self, leaf):
        leaf.append_entry(cf_at(1.0, 2.0))
        leaf.append_entry(cf_at(3.0, 4.0))
        assert leaf.ns.shape == (2,)
        assert leaf.ls.shape == (2, 2)
        assert leaf.ss.shape == (2,)


class TestSearch:
    def test_closest_entry(self, leaf):
        leaf.append_entry(cf_at(0.0, 0.0))
        leaf.append_entry(cf_at(10.0, 0.0))
        leaf.append_entry(cf_at(5.0, 5.0))
        probe = CF.from_point(np.array([9.0, 1.0]))
        idx, dist = leaf.closest_entry(probe, Metric.D0_EUCLIDEAN)
        assert idx == 1
        assert dist == pytest.approx(np.hypot(1.0, 1.0))

    def test_closest_entry_on_empty_node_rejected(self, leaf):
        with pytest.raises(ValueError):
            leaf.closest_entry(cf_at(0.0, 0.0), Metric.D0_EUCLIDEAN)

    def test_pairwise_distances_symmetric_zero_diagonal(self, leaf, rng):
        for _ in range(4):
            leaf.append_entry(CF.from_points(rng.normal(size=(2, 2))))
        mat = leaf.pairwise_entry_distances(Metric.D0_EUCLIDEAN)
        assert mat.shape == (4, 4)
        assert np.allclose(mat, mat.T, atol=1e-9)
        assert np.allclose(np.diag(mat), 0.0)


class TestConsistency:
    def test_consistency_passes_for_valid_node(self, leaf):
        leaf.append_entry(cf_at(1.0, 1.0))
        leaf.check_consistency()

    def test_consistency_rejects_child_mismatch(self, nonleaf, layout_2d):
        child = CFNode(layout_2d, is_leaf=True)
        nonleaf.append_entry(cf_at(0.0, 0.0), child)
        nonleaf.children.append(CFNode(layout_2d, is_leaf=True))  # corrupt
        with pytest.raises(AssertionError):
            nonleaf.check_consistency()
