"""Numerical-stability tests across the CF algebra and tree.

Every radius/diameter/D2-D4 value is computed by cancellation against
SS; these tests pin the behaviour at the regimes where that matters:
large coordinate offsets, massive duplicate accumulation, and very
small scales.
"""

import math

import numpy as np
import pytest

from repro.core.distances import Metric, distance
from repro.core.features import CF
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


class TestLargeOffsets:
    @pytest.mark.parametrize("offset", [1e4, 1e6, 1e8])
    def test_radius_reasonable_at_offset(self, offset, rng):
        pts = rng.normal(offset, 1.0, size=(1000, 2))
        cf = CF.from_points(pts)
        # True radius ~ sqrt(2); cancellation error grows with offset^2,
        # so tolerance loosens with the offset.
        error_scale = math.sqrt(64 * np.finfo(float).eps) * offset
        assert cf.radius == pytest.approx(
            math.sqrt(2.0), abs=max(error_scale, 0.05)
        )
        assert cf.radius >= 0.0

    @pytest.mark.parametrize("offset", [1e4, 1e6])
    def test_d2_between_offset_clusters(self, offset, rng):
        a = rng.normal(offset, 1.0, size=(100, 2))
        b = rng.normal(offset + 10.0, 1.0, size=(100, 2))
        got = distance(CF.from_points(a), CF.from_points(b), Metric.D2_AVG_INTERCLUSTER)
        # Expected: sqrt(||delta||^2 + 2*d*sigma^2)-ish; just check sane.
        assert 5.0 < got < 30.0

    def test_tree_at_offset_conserves(self, rng):
        pts = rng.normal(1e7, 1.0, size=(300, 2))
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=1.0)
        tree.insert_points(pts)
        assert tree.points == 300
        tree.check_invariants()


class TestDuplicateAccumulation:
    def test_duplicates_keep_merging_at_zero_threshold(self):
        """10,000 copies of one point collapse into one leaf entry."""
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.0)
        point = np.array([3.14159, -2.71828])
        for _ in range(10_000):
            tree.insert_point(point)
        entries = tree.leaf_entries()
        assert len(entries) == 1
        assert entries[0].n == 10_000

    def test_weighted_mega_cluster_statistics(self):
        cf = CF(10**9, np.array([10.0**9, 0.0]), 1e9)
        assert np.allclose(cf.centroid, [1.0, 0.0])
        assert cf.radius >= 0.0


class TestSmallScales:
    def test_micro_scale_clusters(self, rng):
        pts = np.concatenate(
            [
                rng.normal(0.0, 1e-9, size=(50, 2)),
                rng.normal(1e-6, 1e-9, size=(50, 2)),
            ]
        )
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        result = Birch(BirchConfig(n_clusters=2, phase4_passes=0)).fit(pts)
        assert result.n_clusters == 2
        centroids = sorted(float(c[0]) for c in result.centroids)
        assert centroids[0] == pytest.approx(0.0, abs=1e-7)
        assert centroids[1] == pytest.approx(1e-6, abs=1e-7)

    def test_subnormal_safe_diameter(self):
        cf = CF.from_points(np.array([[0.0, 0.0], [5e-324, 0.0]]))
        assert cf.diameter >= 0.0
        assert math.isfinite(cf.diameter)


class TestMixedMagnitudes:
    def test_wide_dynamic_range_dataset(self, rng):
        """Clusters at scale 1 and scale 1e6 in one dataset."""
        pts = np.concatenate(
            [
                rng.normal(0.0, 0.5, size=(100, 2)),
                rng.normal(1e6, 0.5, size=(100, 2)),
            ]
        )
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        result = Birch(
            BirchConfig(n_clusters=2, phase4_passes=0, total_points_hint=200)
        ).fit(pts)
        assert result.n_clusters == 2
        xs = sorted(float(c[0]) for c in result.centroids)
        assert xs[0] == pytest.approx(0.0, abs=1.0)
        assert xs[1] == pytest.approx(1e6, rel=1e-5)
