"""Numerical-stability tests across the CF algebra and tree.

In the classic backend every radius/diameter/D2-D4 value is computed by
cancellation against SS; these tests pin the behaviour at the regimes
where that matters: large coordinate offsets, massive duplicate
accumulation, and very small scales.  The stable ``(n, mean, SSD)``
backend is exercised over the same regimes and must reproduce the
origin-centered statistics to ~1e-6 relative error even where the
classic triple has lost every significant digit.
"""

import math

import numpy as np
import pytest

from repro.core.distances import Metric, distance
from repro.core.features import CF, StableCF
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout

pytestmark = pytest.mark.numerics

ALL_METRICS = list(Metric)


class TestLargeOffsets:
    @pytest.mark.parametrize("offset", [1e4, 1e6, 1e8])
    def test_radius_reasonable_at_offset(self, offset, rng):
        pts = rng.normal(offset, 1.0, size=(1000, 2))
        cf = CF.from_points(pts)
        # True radius ~ sqrt(2); cancellation error grows with offset^2,
        # so tolerance loosens with the offset.
        error_scale = math.sqrt(64 * np.finfo(float).eps) * offset
        assert cf.radius == pytest.approx(
            math.sqrt(2.0), abs=max(error_scale, 0.05)
        )
        assert cf.radius >= 0.0

    @pytest.mark.parametrize("offset", [1e4, 1e6])
    def test_d2_between_offset_clusters(self, offset, rng):
        a = rng.normal(offset, 1.0, size=(100, 2))
        b = rng.normal(offset + 10.0, 1.0, size=(100, 2))
        got = distance(CF.from_points(a), CF.from_points(b), Metric.D2_AVG_INTERCLUSTER)
        # Expected: sqrt(||delta||^2 + 2*d*sigma^2)-ish; just check sane.
        assert 5.0 < got < 30.0

    def test_tree_at_offset_conserves(self, rng):
        pts = rng.normal(1e7, 1.0, size=(300, 2))
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=1.0)
        tree.insert_points(pts)
        assert tree.points == 300
        tree.check_invariants()


class TestDuplicateAccumulation:
    def test_duplicates_keep_merging_at_zero_threshold(self):
        """10,000 copies of one point collapse into one leaf entry."""
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.0)
        point = np.array([3.14159, -2.71828])
        for _ in range(10_000):
            tree.insert_point(point)
        entries = tree.leaf_entries()
        assert len(entries) == 1
        assert entries[0].n == 10_000

    def test_weighted_mega_cluster_statistics(self):
        cf = CF(10**9, np.array([10.0**9, 0.0]), 1e9)
        assert np.allclose(cf.centroid, [1.0, 0.0])
        assert cf.radius >= 0.0


class TestSmallScales:
    def test_micro_scale_clusters(self, rng):
        pts = np.concatenate(
            [
                rng.normal(0.0, 1e-9, size=(50, 2)),
                rng.normal(1e-6, 1e-9, size=(50, 2)),
            ]
        )
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        result = Birch(BirchConfig(n_clusters=2, phase4_passes=0)).fit(pts)
        assert result.n_clusters == 2
        centroids = sorted(float(c[0]) for c in result.centroids)
        assert centroids[0] == pytest.approx(0.0, abs=1e-7)
        assert centroids[1] == pytest.approx(1e-6, abs=1e-7)

    def test_subnormal_safe_diameter(self):
        cf = CF.from_points(np.array([[0.0, 0.0], [5e-324, 0.0]]))
        assert cf.diameter >= 0.0
        assert math.isfinite(cf.diameter)


class TestStableBackendAtOffset:
    """The stable backend must be offset-invariant to ~1e-6 relative error.

    Strategy: draw a fixed point cloud at the origin, then repeat every
    computation on ``points + offset``.  Radii/diameters/distances are
    translation-invariant quantities, so the origin-centered values are
    the ground truth; the test demands the stable backend reproduce them
    through offsets up to 1e8 (the ISSUE acceptance bound).
    """

    @pytest.mark.parametrize("offset", [1e6, 1e7, 1e8])
    def test_radius_diameter_match_origin_run(self, offset, rng):
        pts = rng.normal(0.0, 1.0, size=(500, 3))
        reference = StableCF.from_points(pts)
        shifted = StableCF.from_points(pts + offset)
        assert shifted.radius == pytest.approx(reference.radius, rel=1e-6)
        assert shifted.diameter == pytest.approx(reference.diameter, rel=1e-6)

    @pytest.mark.parametrize("offset", [1e6, 1e7, 1e8])
    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_all_metrics_match_origin_run(self, offset, metric, rng):
        a = rng.normal(0.0, 1.0, size=(120, 3))
        b = rng.normal(4.0, 1.5, size=(80, 3))
        reference = distance(
            StableCF.from_points(a), StableCF.from_points(b), metric
        )
        shifted = distance(
            StableCF.from_points(a + offset),
            StableCF.from_points(b + offset),
            metric,
        )
        assert shifted == pytest.approx(reference, rel=1e-6)

    @pytest.mark.parametrize("offset", [1e6, 1e7, 1e8])
    def test_incremental_build_matches_origin_run(self, offset, rng):
        """Welford accumulation, not just the two-pass batch path."""
        pts = rng.normal(0.0, 1.0, size=(300, 2))
        reference = StableCF.from_points(pts)
        acc = StableCF.from_point(pts[0] + offset)
        for row in pts[1:]:
            acc.add_point(row + offset)
        assert acc.radius == pytest.approx(reference.radius, rel=1e-6)
        assert acc.diameter == pytest.approx(reference.diameter, rel=1e-6)

    def test_classic_backend_breaks_where_stable_holds(self, rng):
        """Documents the failure mode the stable backend fixes.

        At offset 1e8 the classic R^2 cancellation ``SS/N - ||LS/N||^2``
        subtracts two ~1e16 quantities to recover a ~1 result — beyond
        float64's 15-16 significant digits, so essentially no correct
        digits survive.  The stable value stays within 1e-6.
        """
        pts = rng.normal(0.0, 1.0, size=(500, 2))
        true_radius = StableCF.from_points(pts).radius

        classic = CF.from_points(pts + 1e8)
        stable = StableCF.from_points(pts + 1e8)

        assert stable.radius == pytest.approx(true_radius, rel=1e-6)
        classic_rel_error = abs(classic.radius - true_radius) / true_radius
        assert classic_rel_error > 1e-3  # catastrophic, not a rounding blip

    @pytest.mark.parametrize("offset", [1e6, 1e8])
    def test_stable_tree_matches_origin_tree(self, offset, rng):
        """Whole-tree invariance: same data, same insertion order, the
        shifted stable tree reproduces the origin tree's leaf-entry
        radii entry-for-entry."""
        pts = rng.normal(0.0, 1.0, size=(400, 2))
        layout = PageLayout(page_size=256, dimensions=2)

        def build(data):
            tree = CFTree(layout, threshold=1.0, cf_backend="stable")
            tree.insert_points(data)
            tree.check_invariants()
            return tree.leaf_entries()

        origin_entries = build(pts)
        shifted_entries = build(pts + offset)
        assert len(shifted_entries) == len(origin_entries)
        for got, want in zip(shifted_entries, origin_entries):
            assert got.n == want.n
            assert got.radius == pytest.approx(want.radius, rel=1e-6, abs=1e-9)
            np.testing.assert_allclose(got.mean - offset, want.mean, atol=1e-6)

    def test_default_pipeline_recovers_offset_clusters(self, rng):
        """End-to-end: BirchConfig defaults to the stable backend, so
        two unit-variance blobs 10 apart are separated even at 1e8."""
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        pts = np.concatenate(
            [
                rng.normal(1e8, 0.5, size=(100, 2)),
                rng.normal(1e8 + 10.0, 0.5, size=(100, 2)),
            ]
        )
        config = BirchConfig(n_clusters=2, phase4_passes=0)
        assert config.cf_backend == "stable"
        result = Birch(config).fit(pts)
        assert result.n_clusters == 2
        xs = sorted(float(c[0]) for c in result.centroids)
        assert xs[0] == pytest.approx(1e8, abs=0.5)
        assert xs[1] == pytest.approx(1e8 + 10.0, abs=0.5)


class TestMixedMagnitudes:
    def test_wide_dynamic_range_dataset(self, rng):
        """Clusters at scale 1 and scale 1e6 in one dataset."""
        pts = np.concatenate(
            [
                rng.normal(0.0, 0.5, size=(100, 2)),
                rng.normal(1e6, 0.5, size=(100, 2)),
            ]
        )
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        result = Birch(
            BirchConfig(n_clusters=2, phase4_passes=0, total_points_hint=200)
        ).fit(pts)
        assert result.n_clusters == 2
        xs = sorted(float(c[0]) for c in result.centroids)
        assert xs[0] == pytest.approx(0.0, abs=1.0)
        assert xs[1] == pytest.approx(1e6, rel=1e-5)
