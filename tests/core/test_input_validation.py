"""Regression tests for the input-validation bugfixes.

Before these fixes:

* ``CF.from_points([])`` returned a bogus ``CF(n=1, d=0)`` — the empty
  1-d array slipped through the singleton-reshape path;
* ``CF.add_point`` / ``CF.from_point`` accepted a point of the wrong
  dimensionality and blew up later (or silently broadcast);
* ``distances_to_set`` with malformed arrays failed with an opaque
  ``einsum`` shape error from deep inside a metric kernel.

All of the above must now raise ``ValueError`` with a message naming the
actual mismatch, for both CF backends.
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.distances import (
    Metric,
    distances_to_set,
    merged_radius,
    stable_distances_to_set,
)
from repro.core.features import CF, CF_BACKENDS, StableCF
from repro.errors import InvalidPointError

BACKENDS = sorted(CF_BACKENDS)


class TestFromPointsValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_list_raises(self, backend):
        with pytest.raises(ValueError, match="zero points"):
            CF_BACKENDS[backend].from_points([])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_2d_array_raises(self, backend):
        with pytest.raises(ValueError, match="zero points"):
            CF_BACKENDS[backend].from_points(np.empty((0, 3)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_dimension_points_raise(self, backend):
        with pytest.raises(ValueError, match="at least one dimension"):
            CF_BACKENDS[backend].from_points(np.empty((4, 0)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_3d_array_raises(self, backend):
        with pytest.raises(ValueError, match="2-d"):
            CF_BACKENDS[backend].from_points(np.zeros((2, 2, 2)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_vector_still_accepted(self, backend):
        """The convenience 1-d path must keep working for real points."""
        cf = CF_BACKENDS[backend].from_points([1.0, 2.0, 3.0])
        assert cf.n == 1
        assert cf.dimensions == 3


class TestPointDimensionValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_from_point_rejects_empty(self, backend):
        with pytest.raises(ValueError, match="non-empty 1-d"):
            CF_BACKENDS[backend].from_point([])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_from_point_rejects_matrix(self, backend):
        with pytest.raises(ValueError, match="non-empty 1-d"):
            CF_BACKENDS[backend].from_point(np.zeros((2, 2)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_point_rejects_wrong_dimensions(self, backend):
        cf = CF_BACKENDS[backend].from_point([1.0, 2.0])
        with pytest.raises(ValueError, match="3 dimensions, CF has 2"):
            cf.add_point([1.0, 2.0, 3.0])
        assert cf.n == 1  # unchanged after the failed add

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_point_rejects_matrix(self, backend):
        cf = CF_BACKENDS[backend].from_point([1.0, 2.0])
        with pytest.raises(ValueError, match="non-empty 1-d"):
            cf.add_point(np.zeros((2, 2)))


class TestDistancesToSetValidation:
    def _probe(self):
        return CF.from_points([[0.0, 0.0], [1.0, 1.0]])

    def _stable_probe(self):
        return StableCF.from_points([[0.0, 0.0], [1.0, 1.0]])

    def test_ls_must_be_2d(self):
        probe = self._probe()
        with pytest.raises(ValueError, match="ls must be 2-d"):
            distances_to_set(probe, np.ones(3), np.ones(3), np.ones(3))

    def test_row_count_mismatch(self):
        probe = self._probe()
        with pytest.raises(ValueError, match="2 rows but ns has 3"):
            distances_to_set(probe, np.ones(3), np.ones((2, 2)), np.ones(3))

    def test_sq_shape_mismatch(self):
        probe = self._probe()
        with pytest.raises(ValueError, match=r"ss shape \(2,\)"):
            distances_to_set(probe, np.ones(3), np.ones((3, 2)), np.ones(2))

    def test_dimension_mismatch_with_probe(self):
        probe = self._probe()
        with pytest.raises(ValueError, match="3 dimensions, probe has 2"):
            distances_to_set(probe, np.ones(2), np.ones((2, 3)), np.ones(2))

    def test_ns_must_be_1d(self):
        probe = self._probe()
        with pytest.raises(ValueError, match="ns must be 1-d"):
            distances_to_set(probe, np.ones((2, 2)), np.ones((2, 2)), np.ones(2))

    def test_stable_kernel_names_its_arrays(self):
        probe = self._stable_probe()
        with pytest.raises(ValueError, match="means must be 2-d"):
            stable_distances_to_set(probe, np.ones(3), np.ones(3), np.ones(3))
        with pytest.raises(ValueError, match=r"ssds shape"):
            stable_distances_to_set(probe, np.ones(3), np.ones((3, 2)), np.ones(2))

    def test_merged_radius_validates_too(self):
        probe = self._probe()
        with pytest.raises(ValueError, match="ls must be 2-d"):
            merged_radius(probe, np.ones(3), np.ones(3), np.ones(3))

    @pytest.mark.parametrize("metric", list(Metric))
    def test_empty_set_returns_empty(self, metric):
        """A size-zero set is valid (an empty node view), not an error."""
        probe = self._probe()
        out = distances_to_set(
            probe, np.empty(0), np.empty((0, 2)), np.empty(0), metric
        )
        assert out.shape == (0,)


class TestBirchIngestValidation:
    """The estimator-level guardrail: ``fit`` rejects poisoned rows by
    default, naming the offending row and the reason."""

    def _points(self):
        rng = np.random.default_rng(5)
        return rng.normal(0.0, 4.0, (120, 2))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nan_raises_invalid_point_by_default(self, backend):
        points = self._points()
        points[37, 1] = np.nan
        est = Birch(BirchConfig(n_clusters=2, cf_backend=backend))
        with pytest.raises(InvalidPointError, match="row 37") as excinfo:
            est.fit(points)
        assert excinfo.value.row == 37
        assert excinfo.value.reason == "nan"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_inf_raises_with_reason(self, backend):
        points = self._points()
        points[0, 0] = np.inf
        est = Birch(BirchConfig(n_clusters=2, cf_backend=backend))
        with pytest.raises(InvalidPointError, match="contains Inf"):
            est.fit(points)

    def test_partial_fit_row_index_is_stream_global(self):
        points = self._points()
        points[60, 0] = np.nan  # row 10 of the *second* batch
        est = Birch(BirchConfig(n_clusters=2))
        est.partial_fit(points[:50])
        with pytest.raises(InvalidPointError, match="row 60"):
            est.partial_fit(points[50:])

    def test_dimension_change_mid_stream_raises(self):
        est = Birch(BirchConfig(n_clusters=2))
        est.partial_fit(self._points())
        with pytest.raises(InvalidPointError, match="dimension"):
            est.partial_fit(np.ones((5, 3)))

    def test_invalid_point_error_is_a_value_error(self):
        """Callers that catch ``ValueError`` keep working."""
        points = self._points()
        points[3, 0] = np.nan
        with pytest.raises(ValueError):
            Birch(BirchConfig(n_clusters=2)).fit(points)

    def test_legacy_opt_out_restores_old_behaviour(self):
        points = self._points()
        points[3, 0] = np.nan
        # Generous memory: no rebuild, so the poisoned threshold guard
        # in rebuild_tree is never reached either.
        config = BirchConfig(
            n_clusters=2, validate_points=False, memory_bytes=1 << 20
        )
        # No InvalidPointError: NaN flows into the tree as before.
        result = Birch(config).fit(points)
        assert result is not None
