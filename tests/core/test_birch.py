"""Tests for the four-phase Birch estimator."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.features import CF
from repro.errors import NotFittedError


@pytest.fixture
def three_blobs(rng):
    centers = np.array([[0.0, 0.0], [12.0, 0.0], [0.0, 12.0]])
    points = np.concatenate([rng.normal(c, 0.5, size=(100, 2)) for c in centers])
    return points, centers


class TestFit:
    def test_recovers_blob_centroids(self, three_blobs):
        points, centers = three_blobs
        result = Birch(BirchConfig(n_clusters=3)).fit(points)
        assert result.n_clusters == 3
        for c in centers:
            nearest = np.linalg.norm(result.centroids - c, axis=1).min()
            assert nearest < 0.5

    def test_labels_cover_all_points(self, three_blobs):
        points, _ = three_blobs
        result = Birch(BirchConfig(n_clusters=3)).fit(points)
        assert result.labels is not None
        assert result.labels.shape == (300,)
        assert (result.labels >= 0).all()

    def test_cluster_point_conservation(self, three_blobs):
        points, _ = three_blobs
        result = Birch(BirchConfig(n_clusters=3)).fit(points)
        assert sum(cf.n for cf in result.clusters) == 300

    def test_phase4_off_gives_no_labels(self, three_blobs):
        points, _ = three_blobs
        config = BirchConfig(n_clusters=3, phase4_passes=0)
        result = Birch(config).fit(points)
        assert result.labels is None
        assert result.refinement is None

    def test_timings_populated(self, three_blobs):
        points, _ = three_blobs
        result = Birch(BirchConfig(n_clusters=3)).fit(points)
        assert result.timings.phase1 > 0
        assert result.timings.phase3 > 0
        assert result.timings.total >= result.timings.phases_1_3

    def test_kmeans_phase3_variant(self, three_blobs):
        points, centers = three_blobs
        config = BirchConfig(n_clusters=3, phase3_algorithm="kmeans")
        result = Birch(config).fit(points)
        for c in centers:
            nearest = np.linalg.norm(result.centroids - c, axis=1).min()
            assert nearest < 0.5

    def test_refit_resets_state(self, three_blobs, rng):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3))
        estimator.fit(points)
        other = rng.normal(5.0, 0.3, size=(50, 2))
        result = Birch(BirchConfig(n_clusters=1)).fit(other)
        assert sum(cf.n for cf in result.clusters) == 50

    def test_invalid_input_rejected(self):
        estimator = Birch(BirchConfig(n_clusters=2))
        with pytest.raises(ValueError):
            estimator.fit(np.empty((0, 2)))
        with pytest.raises(ValueError):
            estimator.fit(np.zeros(5))


class TestMemoryPressure:
    def test_rebuilds_triggered_by_tight_memory(self, rng):
        points = rng.normal(size=(3000, 2)) * 50
        config = BirchConfig(
            n_clusters=5, memory_bytes=8 * 1024, total_points_hint=3000
        )
        estimator = Birch(config)
        result = estimator.fit(points)
        assert result.rebuilds > 0
        assert result.final_threshold > 0.0

    def test_tree_respects_budget_after_fit(self, rng):
        points = rng.normal(size=(3000, 2)) * 50
        config = BirchConfig(n_clusters=5, memory_bytes=8 * 1024)
        estimator = Birch(config)
        estimator.fit(points)
        budget = estimator._budget
        assert budget is not None
        assert budget.pages_in_use <= budget.capacity_pages + 1

    def test_conservation_under_pressure_without_outliers(self, rng):
        points = rng.normal(size=(2000, 2)) * 30
        config = BirchConfig(
            n_clusters=4, memory_bytes=8 * 1024, outlier_handling=False
        )
        estimator = Birch(config)
        estimator.partial_fit(points)
        assert estimator.tree.summary_cf().n == 2000

    def test_conservation_with_outliers(self, rng):
        points = rng.normal(size=(2000, 2)) * 30
        config = BirchConfig(n_clusters=4, memory_bytes=8 * 1024)
        estimator = Birch(config)
        estimator.partial_fit(points)
        on_disk = (
            estimator._outlier_handler.pending_points
            if estimator._outlier_handler
            else 0
        )
        assert estimator.tree.summary_cf().n + on_disk == 2000


class TestPartialFit:
    def test_incremental_batches_accumulate(self, three_blobs):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3))
        estimator.partial_fit(points[:100])
        estimator.partial_fit(points[100:200])
        estimator.partial_fit(points[200:])
        assert estimator.points_seen == 300
        result = estimator.finalize()
        assert result.n_clusters == 3
        assert result.labels is None  # finalize cannot run Phase 4

    def test_finalize_without_data_rejected(self):
        with pytest.raises(RuntimeError):
            Birch(BirchConfig(n_clusters=2)).finalize()

    def test_dimension_mismatch_between_batches(self, rng):
        estimator = Birch(BirchConfig(n_clusters=2))
        estimator.partial_fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            estimator.partial_fit(rng.normal(size=(10, 3)))

    def test_tree_property_before_data_rejected(self):
        with pytest.raises(RuntimeError):
            _ = Birch(BirchConfig(n_clusters=2)).tree


class TestPredict:
    def test_predict_matches_fit_labels(self, three_blobs):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3))
        result = estimator.fit(points)
        predicted = estimator.predict(points)
        kept = result.labels >= 0
        assert np.array_equal(predicted[kept], result.labels[kept])

    def test_predict_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            Birch(BirchConfig(n_clusters=2)).predict(rng.normal(size=(5, 2)))

    def test_predict_new_points(self, three_blobs):
        points, centers = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3))
        estimator.fit(points)
        probes = centers + 0.1
        labels = estimator.predict(probes)
        assert len(set(labels.tolist())) == 3


class TestDelaySplit:
    def test_delay_split_runs_and_conserves(self, rng):
        points = rng.normal(size=(2000, 2)) * 30
        config = BirchConfig(
            n_clusters=4,
            memory_bytes=8 * 1024,
            delay_split=True,
            total_points_hint=2000,
        )
        estimator = Birch(config)
        result = estimator.fit(points)
        # Phase 1 conservation: tree + spilled outliers account for all
        # points.  (Phase 4 then reassigns every raw point, outliers
        # included, so the final clusters sum to N regardless.)
        tree_points = int(result.tree_stats["points"])
        outlier_points = sum(cf.n for cf in result.outliers)
        assert tree_points + outlier_points == 2000
        assert sum(cf.n for cf in result.clusters) == 2000


class TestPhase2:
    def test_condense_respects_input_limit(self, rng):
        points = rng.normal(size=(3000, 2)) * 100
        config = BirchConfig(
            n_clusters=5,
            phase3_input_limit=200,
            memory_bytes=256 * 1024,
        )
        estimator = Birch(config)
        result = estimator.fit(points)
        assert result.tree_stats["leaf_entry_count"] <= 200

    def test_phase2_disabled_keeps_entries(self, rng):
        points = rng.normal(size=(500, 2)) * 100
        config = BirchConfig(
            n_clusters=5,
            phase2_enabled=False,
            phase3_input_limit=10,
            memory_bytes=256 * 1024,
        )
        result = Birch(config).fit(points)
        # Without condensing, far more entries than the limit survive.
        assert result.tree_stats["leaf_entry_count"] > 10


class TestRebuildHistory:
    def test_history_records_each_rebuild(self, rng):
        points = rng.normal(size=(3000, 2)) * 50
        config = BirchConfig(
            n_clusters=5, memory_bytes=8 * 1024, total_points_hint=3000
        )
        estimator = Birch(config)
        estimator.partial_fit(points)
        history = estimator.rebuild_history
        assert len(history) == estimator.rebuilds
        # Thresholds grow strictly across rebuilds.
        thresholds = [t for _, t in history]
        assert all(a < b for a, b in zip(thresholds, thresholds[1:]))
        # Points-seen values are non-decreasing.
        seen = [n for n, _ in history]
        assert all(a <= b for a, b in zip(seen, seen[1:]))

    def test_history_cleared_on_refit(self, rng):
        points = rng.normal(size=(2000, 2)) * 50
        config = BirchConfig(
            n_clusters=3, memory_bytes=8 * 1024, total_points_hint=2000
        )
        estimator = Birch(config)
        estimator.fit(points)
        first = len(estimator.rebuild_history)
        estimator.fit(points)
        assert len(estimator.rebuild_history) <= first + 4  # reset, not doubled


class TestImprove:
    def test_improve_reduces_or_holds_cost(self, three_blobs, rng):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3, phase4_passes=0))
        estimator.fit(points)
        before = estimator.result

        def cost(result):
            labels = estimator.predict(points)
            return float(
                ((points - result.centroids[labels]) ** 2).sum()
            )

        cost_before = cost(before)
        after = estimator.improve(points, passes=3)
        cost_after = cost(after)
        assert cost_after <= cost_before + 1e-9
        assert after.labels is not None

    def test_improve_accumulates_scans(self, three_blobs):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3))
        estimator.fit(points)
        scans_before = estimator.result.io["data_scans"]
        estimator.improve(points, passes=2)
        assert estimator.result.io["data_scans"] > scans_before

    def test_improve_before_fit_rejected(self, rng):
        with pytest.raises(RuntimeError):
            Birch(BirchConfig(n_clusters=2)).improve(rng.normal(size=(5, 2)))

    def test_improve_after_finalize(self, three_blobs):
        points, _ = three_blobs
        estimator = Birch(BirchConfig(n_clusters=3, phase4_passes=0))
        estimator.partial_fit(points)
        estimator.finalize()
        result = estimator.improve(points, passes=1)
        assert result.labels is not None
        assert result.labels.shape == (points.shape[0],)


class TestNotFittedErrors:
    """Every premature-use site raises NotFittedError (a RuntimeError)."""

    def _fresh(self) -> Birch:
        return Birch(BirchConfig(n_clusters=2))

    def test_all_sites_raise_not_fitted(self, rng):
        est = self._fresh()
        with pytest.raises(NotFittedError):
            _ = est.tree
        with pytest.raises(NotFittedError):
            _ = est.result
        with pytest.raises(NotFittedError):
            est.finalize()
        with pytest.raises(NotFittedError):
            est.predict(rng.normal(size=(5, 2)))
        with pytest.raises(NotFittedError):
            est.improve(rng.normal(size=(5, 2)))
        with pytest.raises(NotFittedError):
            est.checkpoint("/tmp/unused.ckpt")

    def test_messages_are_consistent(self, rng):
        est = self._fresh()
        with pytest.raises(NotFittedError, match="no data inserted yet"):
            _ = est.tree
        with pytest.raises(NotFittedError, match="no data inserted yet"):
            est.finalize()
        with pytest.raises(NotFittedError, match="not fitted yet"):
            _ = est.result
        with pytest.raises(NotFittedError, match="not fitted yet"):
            est.predict(rng.normal(size=(5, 2)))
        with pytest.raises(NotFittedError, match="not fitted yet"):
            est.improve(rng.normal(size=(5, 2)))

    def test_not_fitted_is_a_runtime_error(self):
        # Backwards compatibility: callers catching RuntimeError keep working.
        with pytest.raises(RuntimeError):
            _ = self._fresh().tree
