"""Tests for CF-tree insertion, splitting, threshold and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distances import Metric
from repro.core.features import CF
from repro.core.tree import CFTree, ThresholdKind
from repro.pagestore.iostats import IOStats
from repro.pagestore.memory import MemoryBudget
from repro.pagestore.page import PageLayout


def make_tree(threshold: float = 0.5, page_size: int = 128, **kwargs) -> CFTree:
    layout = PageLayout(page_size=page_size, dimensions=2)
    return CFTree(layout, threshold=threshold, **kwargs)


class TestBasicInsertion:
    def test_single_point(self):
        tree = make_tree()
        tree.insert_point(np.array([1.0, 2.0]))
        assert tree.points == 1
        entries = tree.leaf_entries()
        assert len(entries) == 1
        assert np.allclose(entries[0].centroid, [1.0, 2.0])

    def test_close_points_absorb_into_one_entry(self):
        tree = make_tree(threshold=1.0)
        for _ in range(10):
            tree.insert_point(np.array([5.0, 5.0]))
        assert tree.points == 10
        assert len(tree.leaf_entries()) == 1
        assert tree.leaf_entries()[0].n == 10

    def test_far_points_become_separate_entries(self):
        tree = make_tree(threshold=0.1)
        tree.insert_point(np.array([0.0, 0.0]))
        tree.insert_point(np.array([100.0, 100.0]))
        assert len(tree.leaf_entries()) == 2

    def test_zero_threshold_only_merges_duplicates(self):
        tree = make_tree(threshold=0.0)
        tree.insert_point(np.array([1.0, 1.0]))
        tree.insert_point(np.array([1.0, 1.0]))
        tree.insert_point(np.array([1.0, 1.0 + 1e-3]))
        entries = tree.leaf_entries()
        assert len(entries) == 2
        assert sorted(cf.n for cf in entries) == [1, 2]

    def test_insert_cf_of_subcluster(self):
        tree = make_tree(threshold=2.0)
        tree.insert_cf(CF.from_points(np.zeros((5, 2))))
        assert tree.points == 5

    def test_empty_cf_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.insert_cf(CF.empty(2))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_tree(threshold=-1.0)


class TestSplitting:
    def test_split_when_leaf_overflows(self, rng):
        tree = make_tree(threshold=0.0, page_size=128)
        layout_capacity = tree.layout.leaf_capacity
        pts = rng.normal(size=(layout_capacity * 3, 2)) * 100
        for p in pts:
            tree.insert_point(p)
        stats = tree.tree_stats()
        assert stats.leaf_count > 1
        assert stats.leaf_entry_count == pts.shape[0]
        tree.check_invariants()

    def test_root_split_grows_height(self, rng):
        tree = make_tree(threshold=0.0, page_size=128)
        for p in rng.normal(size=(200, 2)) * 100:
            tree.insert_point(p)
        assert tree.height >= 2
        tree.check_invariants()

    def test_split_recorded_in_stats(self, rng):
        stats = IOStats()
        layout = PageLayout(page_size=128, dimensions=2)
        tree = CFTree(layout, threshold=0.0, stats=stats)
        for p in rng.normal(size=(100, 2)) * 100:
            tree.insert_point(p)
        assert stats.splits > 0

    def test_balanced_depth_after_many_inserts(self, rng):
        tree = make_tree(threshold=0.0, page_size=128)
        for p in rng.normal(size=(500, 2)) * 50:
            tree.insert_point(p)
        tree.check_invariants()  # includes uniform-depth check


class TestLeafChain:
    def test_chain_covers_all_entries(self, rng):
        tree = make_tree(threshold=0.0, page_size=128)
        pts = rng.normal(size=(300, 2)) * 100
        for p in pts:
            tree.insert_point(p)
        total = sum(cf.n for cf in tree.leaf_entries())
        assert total == 300

    def test_chain_bidirectional(self, rng):
        tree = make_tree(threshold=0.0, page_size=128)
        for p in rng.normal(size=(200, 2)) * 100:
            tree.insert_point(p)
        leaves = list(tree.leaves())
        # Walk backwards from the last leaf.
        back = []
        node = leaves[-1]
        while node is not None:
            back.append(node)
            node = node.prev_leaf
        assert [id(x) for x in reversed(back)] == [id(x) for x in leaves]


class TestThresholdKinds:
    def test_diameter_threshold_enforced(self, rng):
        tree = make_tree(threshold=0.8, threshold_kind=ThresholdKind.DIAMETER)
        for p in rng.normal(size=(400, 2)) * 10:
            tree.insert_point(p)
        for cf in tree.leaf_entries():
            if cf.n >= 2:
                assert cf.diameter <= 0.8 + 1e-9

    def test_radius_threshold_enforced(self, rng):
        tree = make_tree(threshold=0.5, threshold_kind=ThresholdKind.RADIUS)
        for p in rng.normal(size=(400, 2)) * 10:
            tree.insert_point(p)
        for cf in tree.leaf_entries():
            if cf.n >= 2:
                assert cf.radius <= 0.5 + 1e-9
        tree.check_invariants()


class TestSummary:
    def test_summary_cf_matches_inserted_points(self, rng):
        tree = make_tree(threshold=0.5)
        pts = rng.normal(size=(150, 2)) * 20
        for p in pts:
            tree.insert_point(p)
        summary = tree.summary_cf()
        direct = CF.from_points(pts)
        assert summary.n == direct.n
        assert np.allclose(summary.ls, direct.ls, rtol=1e-9)
        assert summary.ss == pytest.approx(direct.ss, rel=1e-9)

    def test_empty_tree_summary(self):
        tree = make_tree()
        assert tree.summary_cf().n == 0


class TestTryAbsorb:
    def test_absorbs_duplicate_under_threshold(self):
        tree = make_tree(threshold=1.0)
        tree.insert_point(np.array([0.0, 0.0]))
        absorbed = tree.try_absorb_cf(CF.from_point(np.array([0.1, 0.1])))
        assert absorbed
        assert tree.points == 2
        assert len(tree.leaf_entries()) == 1

    def test_rejects_far_point(self):
        tree = make_tree(threshold=0.5)
        tree.insert_point(np.array([0.0, 0.0]))
        absorbed = tree.try_absorb_cf(CF.from_point(np.array([50.0, 50.0])))
        assert not absorbed
        assert tree.points == 1

    def test_rejects_on_empty_tree(self):
        tree = make_tree(threshold=0.5)
        assert not tree.try_absorb_cf(CF.from_point(np.array([0.0, 0.0])))

    def test_updates_ancestors(self, rng):
        tree = make_tree(threshold=1.0, page_size=128)
        pts = rng.normal(size=(300, 2)) * 50
        for p in pts:
            tree.insert_point(p)
        # Absorb something close to an existing point.
        target = pts[0] + 0.01
        if tree.try_absorb_cf(CF.from_point(target)):
            tree.check_invariants()


class TestMemoryAccounting:
    def test_node_count_matches_budget_pages(self, rng):
        layout = PageLayout(page_size=128, dimensions=2)
        budget = MemoryBudget(1024 * 1024, layout)
        tree = CFTree(layout, threshold=0.0, budget=budget)
        for p in rng.normal(size=(300, 2)) * 100:
            tree.insert_point(p)
        assert budget.pages_in_use == tree.node_count

    def test_over_budget_signal(self, rng):
        layout = PageLayout(page_size=128, dimensions=2)
        budget = MemoryBudget(4 * 128, layout)  # four pages only
        tree = CFTree(layout, threshold=0.0, budget=budget)
        for p in rng.normal(size=(100, 2)) * 100:
            tree.insert_point(p)
            if budget.over_budget:
                break
        assert budget.over_budget


class TestMetrics:
    @pytest.mark.parametrize("metric", list(Metric))
    def test_all_metrics_build_valid_trees(self, metric, rng):
        tree = make_tree(threshold=0.5, metric=metric)
        for p in rng.normal(size=(200, 2)) * 10:
            tree.insert_point(p)
        tree.check_invariants()
        assert tree.points == 200


finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestPropertyBased:
    @given(
        pts=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 120), st.just(2)),
            elements=finite,
        ),
        threshold=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_any_input(self, pts, threshold):
        tree = make_tree(threshold=threshold, page_size=128)
        for p in pts:
            tree.insert_point(p)
        tree.check_invariants()
        assert tree.points == pts.shape[0]
        summary = tree.summary_cf()
        direct = CF.from_points(pts)
        assert summary.n == direct.n
        assert np.allclose(summary.ls, direct.ls, rtol=1e-6, atol=1e-6)

    @given(
        pts=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 80), st.just(2)),
            elements=finite,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_entry_count_never_exceeds_points(self, pts):
        tree = make_tree(threshold=1.0, page_size=128)
        for p in pts:
            tree.insert_point(p)
        assert len(tree.leaf_entries()) <= pts.shape[0]


class TestNearestEntry:
    def test_finds_containing_subcluster(self, rng):
        tree = make_tree(threshold=1.0, page_size=256)
        blob_a = rng.normal(0.0, 0.3, size=(50, 2))
        blob_b = rng.normal(20.0, 0.3, size=(50, 2))
        for p in np.concatenate([blob_a, blob_b]):
            tree.insert_point(p)
        cf, dist = tree.nearest_entry(np.array([20.1, 19.9]))
        assert np.linalg.norm(cf.centroid - [20.0, 20.0]) < 1.0
        assert dist >= 0.0

    def test_empty_tree_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.nearest_entry(np.zeros(2))

    def test_returns_copy_not_view(self, rng):
        tree = make_tree(threshold=1.0)
        tree.insert_point(np.array([1.0, 1.0]))
        cf, _ = tree.nearest_entry(np.array([1.0, 1.0]))
        cf.add_point(np.array([100.0, 100.0]))
        # The tree's entry is unchanged.
        assert tree.leaf_entries()[0].n == 1
