"""Tests for CF-tree merging (the data-parallel Phase 1 pattern)."""

import numpy as np
import pytest

from repro.core.features import CF
from repro.core.merge import merge_trees
from repro.core.tree import CFTree, ThresholdKind
from repro.pagestore.memory import MemoryBudget
from repro.pagestore.page import PageLayout


def build(points, threshold=0.5, budget=None, **kwargs) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=threshold, budget=budget, **kwargs)
    tree.insert_points(points)
    return tree


class TestMerge:
    def test_merged_summary_is_union(self, rng):
        a_pts = rng.normal(0, 1, size=(150, 2))
        b_pts = rng.normal(10, 1, size=(150, 2))
        merged = merge_trees([build(a_pts), build(b_pts)])
        direct = CF.from_points(np.concatenate([a_pts, b_pts]))
        summary = merged.summary_cf()
        assert summary.n == 300
        assert np.allclose(summary.ls, direct.ls, rtol=1e-9)
        assert summary.ss == pytest.approx(direct.ss, rel=1e-9)

    def test_merged_tree_is_valid(self, rng):
        shards = [
            build(rng.normal(c, 1, size=(100, 2))) for c in (0.0, 5.0, 10.0)
        ]
        merged = merge_trees(shards)
        merged.check_invariants()

    def test_threshold_levels_up(self, rng):
        coarse = build(rng.normal(0, 1, size=(100, 2)), threshold=2.0)
        fine = build(rng.normal(5, 1, size=(100, 2)), threshold=0.2)
        merged = merge_trees([fine, coarse])
        assert merged.threshold >= 2.0
        merged.check_invariants()

    def test_single_tree_is_identity(self, rng):
        tree = build(rng.normal(size=(50, 2)))
        merged = merge_trees([tree])
        assert merged is tree

    def test_sharded_equals_sequential_clustering(self, rng):
        """Sharded build + merge finds the same clusters as one pass."""
        from repro.core.global_clustering import agglomerative_cf

        centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]
        points = np.concatenate(
            [rng.normal(c, 0.5, size=(100, 2)) for c in centers]
        )
        perm = rng.permutation(300)
        points = points[perm]

        shards = [build(points[i::3], threshold=0.5) for i in range(3)]
        merged = merge_trees(shards)
        clustering = agglomerative_cf(merged.leaf_entries(), n_clusters=3)
        for c in centers:
            nearest = np.linalg.norm(
                clustering.centroids - np.array(c), axis=1
            ).min()
            assert nearest < 0.5

    def test_memory_budget_triggers_rebuild_during_merge(self, rng):
        layout = PageLayout(page_size=256, dimensions=2)
        # Room for the small accumulator, but not for the donor's
        # entries at the fine threshold: the merge must rebuild coarser.
        budget = MemoryBudget(8 * 256, layout)
        acc = CFTree(layout, threshold=0.2, budget=budget)
        acc.insert_points(rng.normal(0, 2, size=(60, 2)))
        donor = build(rng.normal(10, 4, size=(500, 2)), threshold=0.2)
        merged = merge_trees([acc, donor])
        assert merged.summary_cf().n == 560
        assert merged.threshold > 0.2  # a rebuild coarsened the tree
        assert merged.budget is not None
        assert (
            merged.budget.pages_in_use
            <= merged.budget.capacity_pages + 33
        )


class TestValidation:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_trees([])

    def test_dimension_mismatch_rejected(self, rng):
        a = build(rng.normal(size=(10, 2)))
        layout3 = PageLayout(page_size=256, dimensions=3)
        b = CFTree(layout3, threshold=0.5)
        b.insert_point(np.zeros(3))
        with pytest.raises(ValueError, match="dimension"):
            merge_trees([a, b])

    def test_threshold_kind_mismatch_rejected(self, rng):
        a = build(rng.normal(size=(10, 2)))
        b = build(
            rng.normal(size=(10, 2)), threshold_kind=ThresholdKind.RADIUS
        )
        with pytest.raises(ValueError, match="threshold-kind"):
            merge_trees([a, b])


class TestBulkCFMerge:
    """The batched CF descent behind :func:`merge_tree_pair`."""

    @pytest.mark.parametrize("backend", ["classic", "stable"])
    @pytest.mark.parametrize(
        "kind",
        [ThresholdKind.DIAMETER, ThresholdKind.RADIUS],
        ids=["diameter", "radius"],
    )
    def test_pair_summary_exact_both_backends(self, rng, backend, kind):
        from repro.core.merge import merge_tree_pair

        a_pts = rng.normal(0, 1, size=(200, 2))
        b_pts = rng.normal(6, 1, size=(200, 2))
        acc = build(a_pts, cf_backend=backend, threshold_kind=kind)
        donor = build(b_pts, cf_backend=backend, threshold_kind=kind)
        merged = merge_tree_pair(acc, donor)
        merged.check_invariants()
        summary = merged.summary_cf()
        direct = CF.from_points(np.concatenate([a_pts, b_pts]))
        assert summary.n == 400
        assert np.allclose(summary.centroid, direct.centroid, rtol=1e-9)

    def test_pair_merge_is_deterministic(self, rng):
        from repro.core.merge import merge_tree_pair

        a_pts = rng.normal(0, 2, size=(300, 2))
        b_pts = rng.normal(4, 2, size=(300, 2))

        def run():
            merged = merge_tree_pair(build(a_pts), build(b_pts))
            s = merged.export_structure()
            return {k: v.tobytes() for k, v in s.items()}

        assert run() == run()

    def test_bulk_insert_cfs_matches_scalar_summary(self, rng):
        donor = build(rng.normal(0, 3, size=(400, 2)))
        ns = np.concatenate([leaf.ns.copy() for leaf in donor.leaves()])
        vecs = np.concatenate(
            [leaf._vec[: leaf.size].copy() for leaf in donor.leaves()]
        )
        sqs = np.concatenate(
            [leaf._sq[: leaf.size].copy() for leaf in donor.leaves()]
        )
        tree = build(rng.normal(0, 3, size=(100, 2)))
        consumed = tree.bulk_insert_cfs(ns, vecs, sqs)
        assert consumed == ns.shape[0]
        tree.check_invariants()
        assert tree.summary_cf().n == 500

    def test_bulk_insert_cfs_stop_on_alloc_resumes(self, rng):
        donor = build(rng.normal(0, 5, size=(600, 2)), threshold=0.1)
        ns = np.concatenate([leaf.ns.copy() for leaf in donor.leaves()])
        vecs = np.concatenate(
            [leaf._vec[: leaf.size].copy() for leaf in donor.leaves()]
        )
        sqs = np.concatenate(
            [leaf._sq[: leaf.size].copy() for leaf in donor.leaves()]
        )
        tree = build(rng.normal(0, 5, size=(50, 2)), threshold=0.1)
        i = 0
        rounds = 0
        while i < ns.shape[0]:
            i = tree.bulk_insert_cfs(ns, vecs, sqs, start=i, stop_on_alloc=True)
            rounds += 1
        assert rounds > 1  # splits actually paused the sweep
        tree.check_invariants()
        assert tree.summary_cf().n == 650

    def test_cf_backend_mismatch_rejected(self, rng):
        from repro.core.merge import merge_tree_pair

        a = build(rng.normal(size=(10, 2)), cf_backend="classic")
        b = build(rng.normal(size=(10, 2)), cf_backend="stable")
        with pytest.raises(ValueError, match="backend"):
            merge_tree_pair(a, b)
