"""Tests for the CF-tree diagnostics module."""

import numpy as np
import pytest

from repro.core.diagnostics import diagnose, render_outline
from repro.core.node import CFNode
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


@pytest.fixture
def big_tree(rng) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=0.5)
    for p in rng.normal(size=(600, 2)) * 20:
        tree.insert_point(p)
    return tree


@pytest.fixture
def tiny_tree() -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=1.0)
    tree.insert_point(np.array([0.0, 0.0]))
    return tree


class TestDiagnose:
    def test_levels_consistent_with_tree_stats(self, big_tree):
        diag = diagnose(big_tree)
        stats = big_tree.tree_stats()
        assert diag.height == stats.height
        assert diag.total_nodes == stats.node_count
        assert diag.nodes_per_level[-1] == stats.leaf_count
        assert diag.leaf_entry_count == stats.leaf_entry_count

    def test_root_level_is_single_node(self, big_tree):
        diag = diagnose(big_tree)
        assert diag.nodes_per_level[0] == 1

    def test_fanout_within_capacity(self, big_tree):
        diag = diagnose(big_tree)
        assert 2 <= diag.mean_fanout <= big_tree.layout.branching_factor

    def test_occupancy_in_unit_range(self, big_tree):
        diag = diagnose(big_tree)
        assert 0.0 < diag.leaf_occupancy <= 1.0

    def test_entry_points_sum_to_inserted(self, big_tree):
        diag = diagnose(big_tree)
        assert int(diag.entry_points.sum()) == 600

    def test_headroom_bounds_entry_sizes(self, big_tree):
        diag = diagnose(big_tree)
        if diag.threshold_headroom is not None:
            # headroom = 1 - max/T, so max = (1 - headroom) * T <= T + slack
            assert diag.threshold_headroom <= 1.0

    def test_tiny_tree(self, tiny_tree):
        diag = diagnose(tiny_tree)
        assert diag.height == 1
        assert diag.total_nodes == 1
        assert diag.leaf_entry_count == 1
        assert diag.threshold_headroom is None  # no multi-point entries

    def test_summary_lines_render(self, big_tree):
        lines = diagnose(big_tree).summary_lines()
        assert any("height" in line for line in lines)
        assert any("occupancy" in line for line in lines)
        assert any("threshold" in line for line in lines)


class TestOutline:
    def test_outline_mentions_root(self, big_tree):
        outline = render_outline(big_tree)
        first = outline.split("\n")[0]
        assert "n=600" in first

    def test_outline_elides_depth(self, big_tree):
        outline = render_outline(big_tree, max_depth=1)
        assert "..." in outline or big_tree.height == 1

    def test_outline_elides_wide_nodes(self, big_tree):
        outline = render_outline(big_tree, max_children=1, max_depth=3)
        if big_tree.root.size > 1:
            assert "more" in outline

    def test_leaf_only_tree(self, tiny_tree):
        outline = render_outline(tiny_tree)
        assert outline.startswith("leaf[")


@pytest.fixture(params=["classic", "stable"])
def empty_tree(request) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    return CFTree(layout, threshold=1.0, cf_backend=request.param)


class TestDegenerateTrees:
    """diagnose()/render_outline on empty and single-node trees."""

    def test_diagnose_empty_tree(self, empty_tree):
        diag = diagnose(empty_tree)
        assert diag.height == 1
        assert diag.nodes_per_level == [1]
        assert diag.leaf_entry_count == 0
        assert diag.mean_fanout == 0.0
        assert diag.leaf_occupancy == 0.0
        assert diag.median_entry_points == 0.0
        assert diag.threshold_headroom is None
        assert diag.cf_backend == empty_tree.cf_backend

    def test_empty_tree_summary_and_outline_render(self, empty_tree):
        assert diagnose(empty_tree).summary_lines()
        outline = render_outline(empty_tree)
        assert outline.startswith("leaf[0/")
        assert "n=0" in outline

    def test_single_node_tree_both_backends(self, empty_tree):
        empty_tree.insert_point(np.array([1.0, 2.0]))
        diag = diagnose(empty_tree)
        assert diag.height == 1
        assert diag.leaf_entry_count == 1
        assert int(diag.entry_points.sum()) == 1
        assert render_outline(empty_tree).startswith("leaf[1/")

    def test_malformed_tree_raises_value_error(self):
        # A nonleaf root whose only child is a childless nonleaf node
        # violates the tree invariants; diagnose must say so instead of
        # dying on an index error.
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=1.0)
        broken = CFNode(layout, is_leaf=False)
        tree.root = CFNode(layout, is_leaf=False)
        tree.root.children = [broken]
        with pytest.raises(ValueError, match="malformed CF-tree"):
            diagnose(tree)

    def test_outline_clamps_nonpositive_limits(self, big_tree):
        outline = render_outline(big_tree, max_depth=0, max_children=-1)
        lines = outline.split("\n")
        assert lines[0].startswith("node[")  # root always shown
        assert len(lines) >= 2  # the depth-elision marker follows
