"""Tests for the CF-tree diagnostics module."""

import numpy as np
import pytest

from repro.core.diagnostics import diagnose, render_outline
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


@pytest.fixture
def big_tree(rng) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=0.5)
    for p in rng.normal(size=(600, 2)) * 20:
        tree.insert_point(p)
    return tree


@pytest.fixture
def tiny_tree() -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=1.0)
    tree.insert_point(np.array([0.0, 0.0]))
    return tree


class TestDiagnose:
    def test_levels_consistent_with_tree_stats(self, big_tree):
        diag = diagnose(big_tree)
        stats = big_tree.tree_stats()
        assert diag.height == stats.height
        assert diag.total_nodes == stats.node_count
        assert diag.nodes_per_level[-1] == stats.leaf_count
        assert diag.leaf_entry_count == stats.leaf_entry_count

    def test_root_level_is_single_node(self, big_tree):
        diag = diagnose(big_tree)
        assert diag.nodes_per_level[0] == 1

    def test_fanout_within_capacity(self, big_tree):
        diag = diagnose(big_tree)
        assert 2 <= diag.mean_fanout <= big_tree.layout.branching_factor

    def test_occupancy_in_unit_range(self, big_tree):
        diag = diagnose(big_tree)
        assert 0.0 < diag.leaf_occupancy <= 1.0

    def test_entry_points_sum_to_inserted(self, big_tree):
        diag = diagnose(big_tree)
        assert int(diag.entry_points.sum()) == 600

    def test_headroom_bounds_entry_sizes(self, big_tree):
        diag = diagnose(big_tree)
        if diag.threshold_headroom is not None:
            # headroom = 1 - max/T, so max = (1 - headroom) * T <= T + slack
            assert diag.threshold_headroom <= 1.0

    def test_tiny_tree(self, tiny_tree):
        diag = diagnose(tiny_tree)
        assert diag.height == 1
        assert diag.total_nodes == 1
        assert diag.leaf_entry_count == 1
        assert diag.threshold_headroom is None  # no multi-point entries

    def test_summary_lines_render(self, big_tree):
        lines = diagnose(big_tree).summary_lines()
        assert any("height" in line for line in lines)
        assert any("occupancy" in line for line in lines)
        assert any("threshold" in line for line in lines)


class TestOutline:
    def test_outline_mentions_root(self, big_tree):
        outline = render_outline(big_tree)
        first = outline.split("\n")[0]
        assert "n=600" in first

    def test_outline_elides_depth(self, big_tree):
        outline = render_outline(big_tree, max_depth=1)
        assert "..." in outline or big_tree.height == 1

    def test_outline_elides_wide_nodes(self, big_tree):
        outline = render_outline(big_tree, max_children=1, max_depth=3)
        if big_tree.root.size > 1:
            assert "more" in outline

    def test_leaf_only_tree(self, tiny_tree):
        outline = render_outline(tiny_tree)
        assert outline.startswith("leaf[")
