"""Tests for D0-D4: CF closed forms vs brute-force over raw points."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distances import (
    Metric,
    distance,
    distances_to_set,
    merged_diameter,
    merged_radius,
)
from repro.core.features import CF

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def cluster_arrays(dims: int = 2):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 15), st.just(dims)),
        elements=finite,
    )


def brute_d0(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a.mean(axis=0) - b.mean(axis=0)))


def brute_d1(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a.mean(axis=0) - b.mean(axis=0)).sum())


def brute_d2(a: np.ndarray, b: np.ndarray) -> float:
    diffs = a[:, None, :] - b[None, :, :]
    return math.sqrt((diffs**2).sum() / (a.shape[0] * b.shape[0]))


def brute_d3(a: np.ndarray, b: np.ndarray) -> float:
    merged = np.concatenate([a, b])
    n = merged.shape[0]
    if n < 2:
        return 0.0
    diffs = merged[:, None, :] - merged[None, :, :]
    return math.sqrt((diffs**2).sum() / (n * (n - 1)))


def brute_d4(a: np.ndarray, b: np.ndarray) -> float:
    def ssd(x: np.ndarray) -> float:
        return float(((x - x.mean(axis=0)) ** 2).sum())

    merged = np.concatenate([a, b])
    return math.sqrt(max(ssd(merged) - ssd(a) - ssd(b), 0.0))


BRUTE = {
    Metric.D0_EUCLIDEAN: brute_d0,
    Metric.D1_MANHATTAN: brute_d1,
    Metric.D2_AVG_INTERCLUSTER: brute_d2,
    Metric.D3_AVG_INTRACLUSTER: brute_d3,
    Metric.D4_VARIANCE_INCREASE: brute_d4,
}


class TestScalarDistances:
    @pytest.mark.parametrize("metric", list(Metric))
    @given(a=cluster_arrays(), b=cluster_arrays())
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, metric, a, b):
        got = distance(CF.from_points(a), CF.from_points(b), metric)
        expected = BRUTE[metric](a, b)
        assert got == pytest.approx(expected, abs=1e-5, rel=1e-6)

    @pytest.mark.parametrize("metric", list(Metric))
    def test_symmetry(self, metric, rng):
        a = CF.from_points(rng.normal(size=(6, 2)))
        b = CF.from_points(rng.normal(size=(9, 2)))
        assert distance(a, b, metric) == pytest.approx(
            distance(b, a, metric), rel=1e-10
        )

    @pytest.mark.parametrize("metric", list(Metric))
    def test_nonnegative(self, metric, rng):
        a = CF.from_points(rng.normal(size=(4, 2)))
        b = CF.from_points(rng.normal(size=(4, 2)))
        assert distance(a, b, metric) >= 0.0

    def test_identical_singletons_have_zero_distance(self):
        p = CF.from_point(np.array([2.0, -1.0]))
        q = CF.from_point(np.array([2.0, -1.0]))
        for metric in Metric:
            assert distance(p, q, metric) == pytest.approx(0.0, abs=1e-9)

    def test_empty_cf_rejected(self):
        good = CF.from_point(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            distance(good, CF.empty(2))

    def test_d0_on_singletons_is_euclidean(self):
        p = CF.from_point(np.array([0.0, 0.0]))
        q = CF.from_point(np.array([3.0, 4.0]))
        assert distance(p, q, Metric.D0_EUCLIDEAN) == pytest.approx(5.0)

    def test_d1_on_singletons_is_manhattan(self):
        p = CF.from_point(np.array([0.0, 0.0]))
        q = CF.from_point(np.array([3.0, 4.0]))
        assert distance(p, q, Metric.D1_MANHATTAN) == pytest.approx(7.0)


class TestVectorisedDistances:
    @pytest.mark.parametrize("metric", list(Metric))
    def test_matches_scalar_loop(self, metric, rng):
        probe = CF.from_points(rng.normal(size=(5, 3)))
        targets = [CF.from_points(rng.normal(size=(rng.integers(1, 8), 3))) for _ in range(6)]
        ns = np.array([t.n for t in targets], dtype=float)
        ls = np.stack([t.ls for t in targets])
        ss = np.array([t.ss for t in targets])
        got = distances_to_set(probe, ns, ls, ss, metric)
        expected = [distance(probe, t, metric) for t in targets]
        assert np.allclose(got, expected, atol=1e-8)

    def test_empty_set_returns_empty(self):
        probe = CF.from_point(np.array([0.0, 0.0]))
        out = distances_to_set(
            probe, np.empty(0), np.empty((0, 2)), np.empty(0)
        )
        assert out.shape == (0,)

    def test_empty_probe_rejected(self):
        with pytest.raises(ValueError):
            distances_to_set(
                CF.empty(2), np.ones(1), np.zeros((1, 2)), np.zeros(1)
            )


class TestMergedStatistics:
    def test_merged_diameter_matches_cf_merge(self, rng):
        probe = CF.from_points(rng.normal(size=(4, 2)))
        target = CF.from_points(rng.normal(size=(7, 2)))
        got = merged_diameter(
            probe,
            np.array([target.n], dtype=float),
            target.ls.reshape(1, -1),
            np.array([target.ss]),
        )[0]
        assert got == pytest.approx(probe.merge(target).diameter, rel=1e-9)

    def test_merged_radius_matches_cf_merge(self, rng):
        probe = CF.from_points(rng.normal(size=(4, 2)))
        target = CF.from_points(rng.normal(size=(7, 2)))
        got = merged_radius(
            probe,
            np.array([target.n], dtype=float),
            target.ls.reshape(1, -1),
            np.array([target.ss]),
        )[0]
        assert got == pytest.approx(probe.merge(target).radius, rel=1e-9)

    def test_merged_radius_empty_set(self):
        probe = CF.from_point(np.array([1.0, 1.0]))
        assert merged_radius(probe, np.empty(0), np.empty((0, 2)), np.empty(0)).size == 0


class TestMetricParsing:
    def test_from_name_accepts_values(self):
        assert Metric.from_name("d2") is Metric.D2_AVG_INTERCLUSTER
        assert Metric.from_name("D4_VARIANCE_INCREASE") is Metric.D4_VARIANCE_INCREASE
        assert Metric.from_name(Metric.D0_EUCLIDEAN) is Metric.D0_EUCLIDEAN

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            Metric.from_name("d9")
