"""Targeted tests for less-travelled threshold and Phase 3 paths."""

import numpy as np
import pytest

from repro.core.features import CF
from repro.core.global_clustering import CFKMeans
from repro.core.threshold import ThresholdPolicy
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


def tree_with_subclusters(rng, threshold: float, n_points: int = 200) -> CFTree:
    """A tree whose entries have absorbed multiple points (radius > 0)."""
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=threshold)
    centers = rng.uniform(0, 30, size=(20, 2))
    for _ in range(n_points // 20):
        for c in centers:
            tree.insert_point(c + rng.normal(0, threshold / 4, size=2))
    return tree


class TestRegressionEstimate:
    def test_regression_active_with_warm_history(self, rng):
        """Two observations with positive entry radii enable the
        least-squares extrapolation path."""
        policy = ThresholdPolicy(mode="regression")
        tree_a = tree_with_subclusters(rng, threshold=0.4, n_points=100)
        policy.observe(tree_a, 100)
        tree_b = tree_with_subclusters(rng, threshold=0.8, n_points=200)
        policy.observe(tree_b, 200)
        estimate = policy._regression_estimate(200)
        assert estimate is not None
        assert np.isfinite(estimate)
        assert estimate > 0

    def test_regression_none_without_usable_radii(self, rng):
        """Singleton-only trees (avg radius 0) give no regression."""
        layout = PageLayout(page_size=256, dimensions=2)
        policy = ThresholdPolicy(mode="regression")
        for n_seen in (50, 100):
            tree = CFTree(layout, threshold=0.0)
            for p in rng.uniform(0, 100, size=(n_seen, 2)):
                tree.insert_point(p)
            policy.observe(tree, n_seen)
        assert policy._regression_estimate(100) is None

    def test_regression_mode_still_progresses(self, rng):
        """Even with no usable regression, the floor guarantees growth."""
        policy = ThresholdPolicy(mode="regression")
        tree = tree_with_subclusters(rng, threshold=0.5)
        t_next = policy.next_threshold(tree, 200)
        assert t_next > 0.5

    def test_regression_slope_clamped(self, rng):
        """An absurd apparent slope cannot explode the estimate."""
        policy = ThresholdPolicy(mode="regression")
        # Hand-craft pathological history: radius jumps 100x while
        # points barely grow.
        tree_small = tree_with_subclusters(rng, threshold=0.01, n_points=100)
        policy.observe(tree_small, 100)
        tree_big = tree_with_subclusters(rng, threshold=5.0, n_points=110)
        policy.observe(tree_big, 110)
        estimate = policy._regression_estimate(110)
        if estimate is not None:
            # Slope clamp at 1: doubling N at most doubles the radius.
            radii = [
                rec.avg_entry_radius
                for rec in policy._history
                if rec.avg_entry_radius > 0
            ]
            assert estimate <= max(radii) * 2.1


class TestVolumeEstimate:
    def test_volume_estimate_scales_by_root_d(self, rng):
        policy = ThresholdPolicy(total_points_hint=10**9)
        tree = tree_with_subclusters(rng, threshold=1.0)
        estimate = policy._volume_estimate(tree, 500)
        # d = 2: doubling N scales T by 2^(1/2).
        assert estimate == pytest.approx(1.0 * 2 ** 0.5, rel=1e-9)

    def test_volume_estimate_none_at_zero_threshold(self, rng):
        policy = ThresholdPolicy()
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.0)
        tree.insert_point(np.zeros(2))
        assert policy._volume_estimate(tree, 1) is None

    def test_hint_caps_target(self, rng):
        tree = tree_with_subclusters(rng, threshold=1.0)
        capped = ThresholdPolicy(total_points_hint=501)._volume_estimate(tree, 500)
        uncapped = ThresholdPolicy()._volume_estimate(tree, 500)
        assert capped < uncapped


class TestCFKMeansReseeding:
    def test_empty_cluster_reseeded(self, rng):
        """More clusters than distinct locations forces the reseed path
        without crashing, and output clusters are all non-empty."""
        entries = [
            CF.from_points(np.tile([0.0, 0.0], (5, 1))),
            CF.from_points(np.tile([0.0, 0.0], (3, 1))),
            CF.from_points(np.tile([10.0, 0.0], (4, 1))),
        ]
        result = CFKMeans(n_clusters=3, seed=0).fit(entries)
        assert all(cf.n > 0 for cf in result.clusters)
        assert sum(cf.n for cf in result.clusters) == 12
