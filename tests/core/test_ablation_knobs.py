"""Tests for the ablation switches: merging refinement, threshold modes."""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.rebuild import rebuild_tree
from repro.core.threshold import ThresholdPolicy
from repro.core.tree import CFTree
from repro.pagestore.iostats import IOStats
from repro.pagestore.page import PageLayout


def build_tree(points, merging_refinement=True, stats=None) -> CFTree:
    # Page big enough for B > 2, so the closest pair at the stop node is
    # not always the freshly split pair and refinement can fire.
    layout = PageLayout(page_size=512, dimensions=2)
    tree = CFTree(
        layout, threshold=0.2, stats=stats, merging_refinement=merging_refinement
    )
    for p in points:
        tree.insert_point(p)
    return tree


class TestMergingRefinementToggle:
    def test_disabled_tree_records_no_merges(self, rng):
        pts = rng.normal(size=(400, 2)) * 20
        stats = IOStats()
        build_tree(pts, merging_refinement=False, stats=stats)
        assert stats.merges == 0

    def test_enabled_tree_merges(self, rng):
        pts = rng.normal(size=(400, 2)) * 20
        stats = IOStats()
        build_tree(pts, merging_refinement=True, stats=stats)
        assert stats.merges > 0

    def test_disabled_tree_still_valid(self, rng):
        pts = rng.normal(size=(400, 2)) * 20
        tree = build_tree(pts, merging_refinement=False)
        tree.check_invariants()
        assert tree.points == 400

    def test_refinement_improves_or_equals_node_count(self, rng):
        """Merging refinement exists to improve space utilisation."""
        pts = rng.normal(size=(600, 2)) * 20
        with_ref = build_tree(pts, merging_refinement=True)
        without = build_tree(pts, merging_refinement=False)
        assert with_ref.node_count <= without.node_count * 1.1

    def test_setting_survives_rebuild(self, rng):
        pts = rng.normal(size=(200, 2)) * 10
        tree = build_tree(pts, merging_refinement=False)
        rebuilt = rebuild_tree(tree, 1.0)
        assert rebuilt.merging_refinement is False

    def test_config_pass_through(self, rng):
        pts = rng.normal(size=(100, 2))
        estimator = Birch(
            BirchConfig(n_clusters=2, merging_refinement=False, phase4_passes=0)
        )
        estimator.partial_fit(pts)
        assert estimator.tree.merging_refinement is False


class TestThresholdModes:
    @pytest.mark.parametrize("mode", ["full", "volume", "regression", "dmin"])
    def test_all_modes_grow_threshold(self, mode, rng):
        pts = rng.normal(size=(150, 2)) * 5
        tree = build_tree(pts)
        policy = ThresholdPolicy(mode=mode)
        t_next = policy.next_threshold(tree, 150)
        assert t_next > tree.threshold

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(mode="magic")
        with pytest.raises(ValueError):
            BirchConfig(n_clusters=2, threshold_mode="magic")

    @pytest.mark.parametrize("mode", ["full", "volume", "dmin"])
    def test_pipeline_completes_under_each_mode(self, mode, rng):
        points = np.concatenate(
            [rng.normal(c, 0.4, size=(150, 2)) for c in ((0, 0), (10, 0), (0, 10))]
        )
        config = BirchConfig(
            n_clusters=3,
            memory_bytes=4 * 1024,
            threshold_mode=mode,
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 3
        assert result.rebuilds > 0  # the tight budget forced the policy to act

    def test_config_pass_through(self, rng):
        estimator = Birch(BirchConfig(n_clusters=2, threshold_mode="dmin"))
        estimator.partial_fit(rng.normal(size=(20, 2)))
        assert estimator._policy is not None
        assert estimator._policy.mode == "dmin"
