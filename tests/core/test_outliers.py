"""Tests for the outlier spill/re-absorb machinery."""

import numpy as np
import pytest

from repro.core.features import CF
from repro.core.outliers import OutlierHandler
from repro.core.tree import CFTree
from repro.pagestore.disk import DiskStore
from repro.pagestore.page import PageLayout


def handler_with_capacity(n_records: int, fraction: float = 0.25) -> OutlierHandler:
    record = 32
    disk: DiskStore[CF] = DiskStore(
        capacity_bytes=n_records * record, record_bytes=record
    )
    return OutlierHandler(disk, fraction=fraction)


def tree_with_blob(rng, threshold: float = 1.0) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=threshold)
    for p in rng.normal(0, 0.5, size=(100, 2)):
        tree.insert_point(p)
    return tree


class TestClassification:
    def test_small_entry_is_potential_outlier(self):
        handler = handler_with_capacity(10)
        small = CF.from_point(np.zeros(2))
        assert handler.is_potential_outlier(small, mean_entry_points=20.0)

    def test_large_entry_is_not(self):
        handler = handler_with_capacity(10)
        big = CF.from_points(np.zeros((30, 2)))
        assert not handler.is_potential_outlier(big, mean_entry_points=20.0)

    def test_rule_inactive_before_subclusters_form(self):
        handler = handler_with_capacity(10)
        single = CF.from_point(np.zeros(2))
        assert not handler.is_potential_outlier(single, mean_entry_points=1.0)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            handler_with_capacity(10, fraction=0.0)
        with pytest.raises(ValueError):
            handler_with_capacity(10, fraction=1.0)

    def test_boundary_is_exclusive(self):
        handler = handler_with_capacity(10, fraction=0.5)
        exactly_half = CF.from_points(np.zeros((10, 2)))
        assert not handler.is_potential_outlier(exactly_half, mean_entry_points=20.0)


class TestSpill:
    def test_spill_until_full(self):
        handler = handler_with_capacity(3)
        cf = CF.from_point(np.zeros(2))
        assert handler.spill(cf)
        assert handler.spill(cf)
        assert handler.spill(cf)
        assert not handler.spill(cf)  # disk full
        assert handler.stats.spilled == 3
        assert handler.stats.rejected_spills == 1
        assert handler.pending == 3

    def test_pending_points_counts_raw_points(self):
        handler = handler_with_capacity(5)
        handler.spill(CF.from_points(np.zeros((4, 2))))
        handler.spill(CF.from_point(np.zeros(2)))
        assert handler.pending_points == 5


class TestReabsorption:
    def test_absorbable_outliers_return_to_tree(self, rng):
        tree = tree_with_blob(rng, threshold=1.0)
        handler = handler_with_capacity(10)
        # A point right in the blob: absorbable once threshold allows.
        handler.spill(CF.from_point(np.array([0.05, 0.05])))
        # A genuinely distant point: not absorbable.
        handler.spill(CF.from_point(np.array([500.0, 500.0])))
        before = tree.points
        absorbed, kept = handler.reabsorb(tree)
        assert absorbed == 1
        assert kept == 1
        assert tree.points == before + 1
        assert handler.pending == 1

    def test_final_outliers_returns_residue(self, rng):
        tree = tree_with_blob(rng, threshold=1.0)
        handler = handler_with_capacity(10)
        handler.spill(CF.from_point(np.array([500.0, 500.0])))
        handler.spill(CF.from_point(np.array([0.0, 0.0])))
        residue = handler.final_outliers(tree)
        assert len(residue) == 1
        assert np.allclose(residue[0].centroid, [500.0, 500.0])
        assert handler.pending == 0

    def test_reabsorb_cycle_counted(self, rng):
        tree = tree_with_blob(rng)
        handler = handler_with_capacity(4)
        handler.reabsorb(tree)
        handler.reabsorb(tree)
        assert handler.stats.reabsorption_cycles == 2

    def test_reabsorbed_points_conserved(self, rng):
        """Tree points + disk points is invariant under reabsorb."""
        tree = tree_with_blob(rng, threshold=1.0)
        handler = handler_with_capacity(20)
        for _ in range(5):
            handler.spill(CF.from_point(rng.normal(0, 0.3, size=2)))
        for _ in range(3):
            handler.spill(CF.from_point(rng.uniform(100, 200, size=2)))
        total_before = tree.points + handler.pending_points
        handler.reabsorb(tree)
        assert tree.points + handler.pending_points == total_before
