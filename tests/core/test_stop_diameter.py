"""Tests for Phase 3's diameter-bound stopping criterion.

The paper's Phase 3 lets the user "specify either the desired number of
clusters or the desired diameter threshold for clusters".
"""

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.features import CF
from repro.core.global_clustering import agglomerative_cf


def grid_entries(rng, side=3, spacing=10.0, per_cell=4, spread=0.3):
    entries = []
    for row in range(side):
        for col in range(side):
            center = np.array([col * spacing, row * spacing])
            for _ in range(per_cell):
                pts = rng.normal(center, spread, size=(3, 2))
                entries.append(CF.from_points(pts))
    return entries


class TestStopDiameter:
    def test_diameter_bound_respected(self, rng):
        entries = grid_entries(rng)
        result = agglomerative_cf(entries, n_clusters=1, stop_diameter=3.0)
        for cf in result.clusters:
            assert cf.diameter <= 3.0 + 1e-9

    def test_bound_recovers_grid_cells(self, rng):
        """A bound between cell size and cell spacing yields 9 clusters."""
        entries = grid_entries(rng, side=3, spacing=10.0)
        result = agglomerative_cf(entries, n_clusters=1, stop_diameter=4.0)
        assert result.n_clusters == 9

    def test_no_bound_merges_to_k(self, rng):
        entries = grid_entries(rng)
        result = agglomerative_cf(entries, n_clusters=1)
        assert result.n_clusters == 1

    def test_tight_bound_yields_many_clusters(self, rng):
        entries = grid_entries(rng)
        result = agglomerative_cf(entries, n_clusters=1, stop_diameter=0.0)
        # Nothing can merge (every merge has positive diameter).
        assert result.n_clusters == len(entries)

    def test_k_still_floors_cluster_count(self, rng):
        """A loose diameter bound never merges below n_clusters."""
        entries = grid_entries(rng)
        result = agglomerative_cf(entries, n_clusters=5, stop_diameter=1e9)
        assert result.n_clusters == 5

    def test_conservation_with_bound(self, rng):
        entries = grid_entries(rng)
        result = agglomerative_cf(entries, n_clusters=1, stop_diameter=4.0)
        result.check_conservation(entries)

    def test_negative_bound_rejected(self, rng):
        entries = grid_entries(rng)
        with pytest.raises(ValueError):
            agglomerative_cf(entries, n_clusters=1, stop_diameter=-1.0)


class TestPipelineIntegration:
    def test_birch_with_stop_diameter(self, rng):
        points = np.concatenate(
            [
                rng.normal(c, 0.4, size=(100, 2))
                for c in ((0, 0), (15, 0), (0, 15), (15, 15))
            ]
        )
        config = BirchConfig(
            n_clusters=1,  # diameter bound drives the count instead
            phase3_stop_diameter=5.0,
            phase4_passes=0,
            total_points_hint=len(points),
        )
        result = Birch(config).fit(points)
        assert result.n_clusters == 4
        for cf in result.clusters:
            assert cf.diameter <= 5.0 + 1e-9

    def test_config_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            BirchConfig(n_clusters=2, phase3_stop_diameter=-0.5)
