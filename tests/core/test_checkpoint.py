"""Checkpoint container integrity and kill/resume equivalence."""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core.birch import Birch, BirchResult
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    write_checkpoint,
)
from repro.core.config import BirchConfig
from repro.errors import (
    ArchiveError,
    ChecksumMismatchError,
    NotFittedError,
    PermanentIOError,
    TransientIOError,
)
from repro.pagestore.faults import FaultInjector


def _stream(n: int = 1200, d: int = 2) -> np.ndarray:
    rng = np.random.default_rng(42)
    centers = rng.uniform(0.0, 20.0, size=(6, d))
    return np.concatenate(
        [rng.normal(c, 0.4, size=(n // 6, d)) for c in centers]
    )


def _config(backend: str, **overrides) -> BirchConfig:
    defaults = dict(
        n_clusters=6,
        memory_bytes=12 * 1024,
        cf_backend=backend,
        total_points_hint=1200,
    )
    defaults.update(overrides)
    return BirchConfig(**defaults)


def _assert_results_identical(a: BirchResult, b: BirchResult) -> None:
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.entry_labels, b.entry_labels)
    assert a.final_threshold == b.final_threshold
    assert a.rebuilds == b.rebuilds
    assert a.tree_stats == b.tree_stats
    assert len(a.outliers) == len(b.outliers)
    for x, y in zip(a.outliers, b.outliers):
        assert x.n == y.n
        np.testing.assert_array_equal(x.centroid, y.centroid)


class TestKillResumeEquivalence:
    """The acceptance criterion: resumed == uninterrupted, bit for bit."""

    @pytest.mark.parametrize("backend", ["classic", "stable"])
    @pytest.mark.parametrize("cut", [1, 17, 300, 600, 1199])
    def test_resume_matches_uninterrupted(
        self, tmp_path: Path, backend: str, cut: int
    ) -> None:
        points = _stream()

        baseline = Birch(_config(backend))
        baseline.partial_fit(points)
        expected = baseline.finalize()

        interrupted = Birch(_config(backend))
        interrupted.partial_fit(points[:cut])
        ckpt = tmp_path / "phase1.ckpt"
        interrupted.checkpoint(ckpt)
        del interrupted  # the "crash"

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == cut
        resumed.partial_fit(points[cut:])
        actual = resumed.finalize()

        _assert_results_identical(expected, actual)

    @pytest.mark.parametrize("backend", ["classic", "stable"])
    def test_resume_with_delay_split(self, tmp_path: Path, backend: str) -> None:
        points = _stream()
        config = _config(backend, delay_split=True)

        baseline = Birch(config)
        baseline.partial_fit(points)
        expected = baseline.finalize()

        interrupted = Birch(config)
        interrupted.partial_fit(points[:700])
        ckpt = tmp_path / "phase1.ckpt"
        interrupted.checkpoint(ckpt)
        resumed = Birch.resume(ckpt)
        resumed.partial_fit(points[700:])
        _assert_results_identical(expected, resumed.finalize())

    def test_resume_restores_stream_accounting(self, tmp_path: Path) -> None:
        points = _stream()
        est = Birch(_config("stable"))
        est.partial_fit(points[:800])
        ckpt = tmp_path / "phase1.ckpt"
        est.checkpoint(ckpt)

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == est.points_seen
        assert resumed.rebuilds == est.rebuilds
        assert resumed.rebuild_history == est.rebuild_history
        assert resumed.stats.summary() == est.stats.summary()
        assert resumed.tree.threshold == est.tree.threshold
        assert resumed.config == est.config

    def test_checkpoint_before_any_data_raises(self, tmp_path: Path) -> None:
        est = Birch(_config("stable"))
        with pytest.raises(NotFittedError):
            est.checkpoint(tmp_path / "nothing.ckpt")


class TestAutomaticCheckpoints:
    def test_periodic_checkpoints_are_written(self, tmp_path: Path) -> None:
        ckpt = tmp_path / "auto.ckpt"
        config = _config(
            "stable",
            checkpoint_every_points=400,
            checkpoint_path=str(ckpt),
        )
        points = _stream()
        est = Birch(config)
        est.partial_fit(points[:300])
        assert not ckpt.exists()  # below the first trigger
        est.partial_fit(points[300:500])
        assert ckpt.exists()

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == 400

    def test_auto_checkpoint_then_resume_matches(self, tmp_path: Path) -> None:
        ckpt = tmp_path / "auto.ckpt"
        points = _stream()

        baseline = Birch(_config("classic"))
        baseline.partial_fit(points)
        expected = baseline.finalize()

        config = _config(
            "classic",
            checkpoint_every_points=500,
            checkpoint_path=str(ckpt),
        )
        streamer = Birch(config)
        streamer.partial_fit(points[:740])  # dies at point 740

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == 500  # the last periodic snapshot
        resumed.config.checkpoint_every_points = None  # plain finish
        resumed.partial_fit(points[500:])
        _assert_results_identical(expected, resumed.finalize())

    def test_config_requires_path_with_period(self) -> None:
        with pytest.raises(ValueError, match="checkpoint_path"):
            BirchConfig(n_clusters=2, checkpoint_every_points=100)


class TestContainerIntegrity:
    def _checkpoint_bytes(self, tmp_path: Path) -> tuple[Path, bytes]:
        est = Birch(_config("stable"))
        est.partial_fit(_stream()[:400])
        ckpt = tmp_path / "c.ckpt"
        est.checkpoint(ckpt)
        return ckpt, ckpt.read_bytes()

    def test_every_protected_byte_is_covered(self, tmp_path: Path) -> None:
        ckpt, raw = self._checkpoint_bytes(tmp_path)
        # Sample the version field, the digest itself, the length field
        # and payload bytes from start, middle and end.
        offsets = [8, 11, 12, 43, 44, 51, 52, len(raw) // 2, len(raw) - 1]
        for offset in offsets:
            corrupt = bytearray(raw)
            corrupt[offset] ^= 0x01
            ckpt.write_bytes(bytes(corrupt))
            with pytest.raises(ChecksumMismatchError):
                load_checkpoint(ckpt)

    def test_flipped_magic_is_an_archive_error(self, tmp_path: Path) -> None:
        ckpt, raw = self._checkpoint_bytes(tmp_path)
        for offset in (0, 7):
            corrupt = bytearray(raw)
            corrupt[offset] ^= 0x01
            ckpt.write_bytes(bytes(corrupt))
            with pytest.raises(ArchiveError, match="magic"):
                load_checkpoint(ckpt)

    def test_truncation_is_loud(self, tmp_path: Path) -> None:
        ckpt, raw = self._checkpoint_bytes(tmp_path)
        for keep in (0, 10, 51, len(raw) - 1):
            ckpt.write_bytes(raw[:keep])
            with pytest.raises((ArchiveError, ChecksumMismatchError)):
                load_checkpoint(ckpt)

    def test_unknown_version_is_an_archive_error(self, tmp_path: Path) -> None:
        ckpt, raw = self._checkpoint_bytes(tmp_path)
        payload = raw[52:]
        version = struct.pack("<I", CHECKPOINT_VERSION + 1)
        length = struct.pack("<Q", len(payload))
        digest = hashlib.sha256(version + length + payload).digest()
        ckpt.write_bytes(b"BIRCHCKP" + version + digest + length + payload)
        with pytest.raises(ArchiveError, match="version"):
            load_checkpoint(ckpt)

    def test_missing_file_is_an_archive_error(self, tmp_path: Path) -> None:
        with pytest.raises(ArchiveError, match="exist"):
            load_checkpoint(tmp_path / "never-written.ckpt")

    def test_checksum_error_is_a_value_error(self, tmp_path: Path) -> None:
        ckpt, raw = self._checkpoint_bytes(tmp_path)
        corrupt = bytearray(raw)
        corrupt[-1] ^= 0xFF
        ckpt.write_bytes(bytes(corrupt))
        with pytest.raises(ValueError):
            load_checkpoint(ckpt)


class TestAtomicity:
    def test_failed_write_preserves_previous_checkpoint(
        self, tmp_path: Path
    ) -> None:
        points = _stream()
        est = Birch(_config("stable"))
        est.partial_fit(points[:400])
        ckpt = tmp_path / "c.ckpt"
        est.checkpoint(ckpt)
        good = ckpt.read_bytes()

        est.partial_fit(points[400:800])
        injector = FaultInjector(kind="permanent", fail_every=1)
        with pytest.raises(PermanentIOError):
            write_checkpoint(ckpt, est, injector=injector)
        assert ckpt.read_bytes() == good
        assert not ckpt.with_name(ckpt.name + ".tmp").exists()

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == 400

    def test_transient_write_faults_heal(self, tmp_path: Path) -> None:
        est = Birch(_config("stable"))
        est.partial_fit(_stream()[:400])
        ckpt = tmp_path / "c.ckpt"
        naps: list[float] = []
        injector = FaultInjector(fail_every=1, max_faults=1)
        write_checkpoint(
            ckpt, est, injector=injector, attempts=4, sleep=naps.append
        )
        assert injector.faults_injected == 1
        assert naps  # at least one backoff happened
        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == 400

    def test_unhealed_transient_write_propagates(self, tmp_path: Path) -> None:
        est = Birch(_config("stable"))
        est.partial_fit(_stream()[:400])
        ckpt = tmp_path / "c.ckpt"
        injector = FaultInjector(fail_every=1)
        with pytest.raises(TransientIOError):
            write_checkpoint(
                ckpt, est, injector=injector, attempts=3, sleep=lambda _: None
            )
        assert not ckpt.exists()
        assert not ckpt.with_name(ckpt.name + ".tmp").exists()


@pytest.mark.evolve
class TestEvolveArchiveCompat:
    """Archive minor version 2: evolve state rides along; v1 still loads."""

    def _evolve_config(self) -> BirchConfig:
        return BirchConfig(
            n_clusters=3,
            decay_half_life=3.0,
            epoch_buckets=4,
            drift_policy="alarm",
        )

    def _stream_epoch(self, i: int) -> np.ndarray:
        rng = np.random.default_rng(100 + i)
        return rng.normal((i % 5, i % 5), 0.3, (120, 2))

    @staticmethod
    def _reseal(payload: bytes, version: int) -> bytes:
        packed = struct.pack("<I", version)
        length = struct.pack("<Q", len(payload))
        digest = hashlib.sha256(packed + length + payload).digest()
        return b"BIRCHCKP" + packed + digest + length + payload

    def test_v1_archive_loads_with_zeroed_evolve_state(
        self, tmp_path: Path
    ) -> None:
        # Emulate a genuine version-1 archive: take a v2 snapshot of a
        # plain (non-evolving) run and strip the evolve payload the old
        # writer never produced.
        import io
        import json

        est = Birch(_config("stable"))
        est.partial_fit(_stream()[:400])
        ckpt = tmp_path / "v1.ckpt"
        est.checkpoint(ckpt)
        raw = ckpt.read_bytes()

        with np.load(io.BytesIO(raw[52:]), allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {
                key: data[key]
                for key in data.files
                if key != "meta" and not key.startswith("evolve_")
            }
        assert meta.pop("evolve", None) is not None
        meta["format"] = 1
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        ckpt.write_bytes(self._reseal(buffer.getvalue(), 1))

        resumed = load_checkpoint(ckpt)
        assert resumed.epoch == 0
        assert resumed.points_forgotten == 0
        assert resumed.tree.decay_clock == 0
        assert resumed._epoch_buckets is None
        # The tree itself is intact.
        assert resumed.points_seen == 400
        resumed.tree.check_invariants()

    def test_v2_round_trips_epoch_buckets_bit_for_bit(
        self, tmp_path: Path
    ) -> None:
        est = Birch(self._evolve_config())
        for i in range(6):
            est.partial_fit(self._stream_epoch(i))
        ckpt = tmp_path / "v2.ckpt"
        write_checkpoint(ckpt, est)

        resumed = load_checkpoint(ckpt)
        assert resumed.epoch == est.epoch
        assert resumed.tree.decay_clock == est.tree.decay_clock
        assert resumed.points_forgotten == est.points_forgotten
        original = est._epoch_buckets
        clone = resumed._epoch_buckets
        assert clone.epochs() == original.epochs()
        assert clone.max_buckets == original.max_buckets
        assert clone.max_entries == original.max_entries
        for a, b in zip(clone.buckets, original.buckets):
            assert a.epoch == b.epoch
            for (na, ma, sa), (nb, mb, sb) in zip(
                a.iter_deltas(), b.iter_deltas()
            ):
                assert na == nb and sa == sb
                np.testing.assert_array_equal(ma, mb)
        # Drift monitor state survives byte-for-byte too.
        assert (
            resumed._drift_monitor.state_dict()
            == est._drift_monitor.state_dict()
        )

    def test_both_versions_are_supported(self) -> None:
        from repro.core.checkpoint import _SUPPORTED_VERSIONS

        assert CHECKPOINT_VERSION == 2
        assert _SUPPORTED_VERSIONS == frozenset({1, 2})
