"""Tests for the dynamic threshold heuristics."""

import numpy as np
import pytest

from repro.core.threshold import ThresholdPolicy
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout


def build_tree(points: np.ndarray, threshold: float = 0.0) -> CFTree:
    layout = PageLayout(page_size=256, dimensions=2)
    tree = CFTree(layout, threshold=threshold)
    for p in points:
        tree.insert_point(p)
    return tree


class TestStrictGrowth:
    def test_next_threshold_strictly_larger(self, rng):
        tree = build_tree(rng.normal(size=(100, 2)), threshold=0.1)
        policy = ThresholdPolicy()
        t_next = policy.next_threshold(tree, 100)
        assert t_next > tree.threshold

    def test_growth_from_zero_threshold(self, rng):
        tree = build_tree(rng.normal(size=(50, 2)), threshold=0.0)
        policy = ThresholdPolicy()
        t_next = policy.next_threshold(tree, 50)
        assert t_next > 0.0

    def test_expansion_floor_applies(self, rng):
        tree = build_tree(rng.normal(size=(60, 2)), threshold=1.0)
        policy = ThresholdPolicy(expansion_factor=2.0)
        t_next = policy.next_threshold(tree, 60)
        assert t_next >= 2.0  # at least current * expansion

    def test_repeated_growth_is_monotone(self, rng):
        pts = rng.normal(size=(80, 2)) * 5
        policy = ThresholdPolicy()
        threshold = 0.0
        previous = 0.0
        for i in range(4):
            tree = build_tree(pts, threshold=threshold)
            threshold = policy.next_threshold(tree, 80 * (i + 1))
            assert threshold > previous
            previous = threshold


class TestBoundedness:
    def test_threshold_never_exceeds_dataset_spread(self, rng):
        pts = rng.normal(size=(100, 2))
        tree = build_tree(pts, threshold=0.5)
        policy = ThresholdPolicy()
        t_next = policy.next_threshold(tree, 100)
        from repro.core.features import CF

        spread = CF.from_points(pts).diameter
        # Cap is spread/4, plus the expansion floor can push slightly
        # beyond; it must stay well below the full spread.
        assert t_next < spread

    def test_pathological_history_does_not_explode(self, rng):
        """Near-coincident observations must not extrapolate absurdly."""
        pts = np.concatenate(
            [rng.normal(0, 0.01, (50, 2)), rng.normal(10, 2.0, (50, 2))]
        )
        policy = ThresholdPolicy()
        threshold = 0.0
        for n_seen in (50, 51, 52, 100):
            tree = build_tree(pts[:n_seen], threshold=threshold)
            threshold = policy.next_threshold(tree, n_seen)
        from repro.core.features import CF

        assert threshold < CF.from_points(pts).diameter * 2


class TestHints:
    def test_total_points_hint_caps_target(self, rng):
        pts = rng.normal(size=(100, 2)) * 3
        tree_a = build_tree(pts, threshold=0.5)
        tree_b = build_tree(pts, threshold=0.5)
        unhinted = ThresholdPolicy().next_threshold(tree_a, 100)
        hinted = ThresholdPolicy(total_points_hint=101).next_threshold(tree_b, 100)
        assert hinted <= unhinted + 1e-12

    def test_invalid_expansion_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(expansion_factor=1.0)

    def test_nonpositive_points_rejected(self, rng):
        tree = build_tree(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            ThresholdPolicy().next_threshold(tree, 0)


class TestObservation:
    def test_observe_accumulates_history(self, rng):
        tree = build_tree(rng.normal(size=(40, 2)), threshold=0.5)
        policy = ThresholdPolicy()
        assert policy.history_length == 0
        policy.observe(tree, 40)
        assert policy.history_length == 1
        policy.next_threshold(tree, 40)  # observes internally too
        assert policy.history_length == 2

    def test_reset_clears_history(self, rng):
        tree = build_tree(rng.normal(size=(40, 2)))
        policy = ThresholdPolicy()
        policy.observe(tree, 40)
        policy.reset()
        assert policy.history_length == 0


class TestDminEstimate:
    def test_dmin_allows_closest_pair_to_merge(self, rng):
        """After growing to the proposal, the two closest entries in the
        most crowded leaf must be mergeable (the heuristic's purpose)."""
        pts = rng.normal(size=(60, 2)) * 4
        tree = build_tree(pts, threshold=0.2)
        policy = ThresholdPolicy()
        proposal = policy.next_threshold(tree, 60)

        crowded = max(tree.leaves(), key=lambda leaf: leaf.size)
        if crowded.size >= 2:
            dists = crowded.pairwise_entry_distances(tree.metric)
            np.fill_diagonal(dists, np.inf)
            i, j = np.unravel_index(np.argmin(dists), dists.shape)
            merged = crowded.entry_cf(int(i)).merge(crowded.entry_cf(int(j)))
            # Proposal may be floored above dmin, never below it.
            assert proposal >= merged.diameter - 1e-9
