"""Round-trip tests for CF / tree / result serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.core.features import CF
from repro.core.serialization import (
    load_cfs,
    load_result_arrays,
    load_tree,
    save_cfs,
    save_result,
    save_tree,
)
from repro.core.tree import CFTree, ThresholdKind
from repro.errors import ArchiveError
from repro.pagestore.page import PageLayout


@pytest.fixture
def cf_list(rng):
    return [CF.from_points(rng.normal(size=(k + 1, 3))) for k in range(10)]


class TestCFRoundTrip:
    def test_roundtrip_preserves_everything(self, cf_list, tmp_path):
        path = tmp_path / "cfs.npz"
        save_cfs(path, cf_list)
        loaded = load_cfs(path)
        assert len(loaded) == len(cf_list)
        for original, restored in zip(cf_list, loaded):
            assert restored.allclose(original, rtol=0, atol=0)

    def test_empty_list_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_cfs(tmp_path / "x.npz", [])

    def test_archive_is_compressed_npz(self, cf_list, tmp_path):
        path = tmp_path / "cfs.npz"
        save_cfs(path, cf_list)
        with np.load(path) as data:
            assert set(data.files) >= {"ns", "ls", "ss", "version"}


class TestTreeRoundTrip:
    def _build_tree(self, rng) -> CFTree:
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.5)
        for p in rng.normal(size=(300, 2)) * 10:
            tree.insert_point(p)
        return tree

    def test_summary_preserved(self, rng, tmp_path):
        tree = self._build_tree(rng)
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        restored = load_tree(path)
        a, b = tree.summary_cf(), restored.summary_cf()
        assert a.n == b.n
        assert np.allclose(a.ls, b.ls, rtol=1e-9)
        assert a.ss == pytest.approx(b.ss, rel=1e-9)

    def test_parameters_preserved(self, rng, tmp_path):
        layout = PageLayout(page_size=512, dimensions=2)
        tree = CFTree(
            layout,
            threshold=1.25,
            threshold_kind=ThresholdKind.RADIUS,
        )
        for p in rng.normal(size=(50, 2)):
            tree.insert_point(p)
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        restored = load_tree(path)
        assert restored.threshold == 1.25
        assert restored.threshold_kind is ThresholdKind.RADIUS
        assert restored.layout.page_size == 512

    def test_restored_tree_is_structurally_valid(self, rng, tmp_path):
        tree = self._build_tree(rng)
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        restored = load_tree(path)
        restored.check_invariants()

    def test_restored_tree_accepts_inserts(self, rng, tmp_path):
        tree = self._build_tree(rng)
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        restored = load_tree(path)
        before = restored.points
        restored.insert_point(np.array([0.0, 0.0]))
        assert restored.points == before + 1


class TestResultRoundTrip:
    def test_roundtrip(self, rng, tmp_path):
        points = np.concatenate(
            [rng.normal(c, 0.5, size=(80, 2)) for c in ((0, 0), (10, 0))]
        )
        result = Birch(BirchConfig(n_clusters=2)).fit(points)
        path = tmp_path / "result.npz"
        save_result(path, result)
        clusters, centroids, labels, header = load_result_arrays(path)
        assert len(clusters) == 2
        assert np.allclose(centroids, result.centroids)
        assert labels is not None
        assert np.array_equal(labels, result.labels)
        assert header["rebuilds"] == result.rebuilds

    def test_roundtrip_without_labels(self, rng, tmp_path):
        points = rng.normal(size=(100, 2))
        result = Birch(BirchConfig(n_clusters=3, phase4_passes=0)).fit(points)
        path = tmp_path / "result.npz"
        save_result(path, result)
        _, _, labels, _ = load_result_arrays(path)
        assert labels is None


class TestVersioning:
    def test_future_version_rejected(self, cf_list, tmp_path):
        path = tmp_path / "cfs.npz"
        arrays = {
            "ns": np.array([1]),
            "ls": np.zeros((1, 2)),
            "ss": np.zeros(1),
        }
        np.savez_compressed(path, version=99, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_cfs(path)


class TestPropertyRoundTrip:
    @given(
        ns=st.lists(st.integers(1, 1000), min_size=1, max_size=20),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_cf_list_roundtrips(self, ns, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        cfs = [
            CF(n, rng.normal(size=3) * n, float(abs(rng.normal()) * n))
            for n in ns
        ]
        path = tmp_path_factory.mktemp("ser") / "cfs.npz"
        save_cfs(path, cfs)
        loaded = load_cfs(path)
        for original, restored in zip(cfs, loaded):
            assert restored.n == original.n
            assert np.array_equal(restored.ls, original.ls)
            assert restored.ss == original.ss


class TestArchiveErrors:
    """Corrupt, truncated or foreign archives fail loudly with the path."""

    @pytest.fixture(params=[load_cfs, load_tree, load_result_arrays])
    def loader(self, request):
        return request.param

    def test_missing_file(self, loader, tmp_path):
        target = tmp_path / "never-written.npz"
        with pytest.raises(ArchiveError, match="never-written"):
            loader(target)

    def test_not_an_npz(self, loader, tmp_path):
        target = tmp_path / "garbage.npz"
        target.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ArchiveError, match="garbage"):
            loader(target)

    def test_truncated_archive(self, loader, cf_list, tmp_path):
        target = tmp_path / "cut.npz"
        save_cfs(target, cf_list)
        raw = target.read_bytes()
        target.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArchiveError, match="cut"):
            loader(target)

    def test_foreign_npz_missing_keys(self, loader, tmp_path):
        target = tmp_path / "foreign.npz"
        np.savez(target, version=1, unrelated=np.arange(3))
        with pytest.raises(ArchiveError, match="foreign"):
            loader(target)

    def test_archive_error_is_a_value_error(self, tmp_path):
        target = tmp_path / "bad.npz"
        target.write_bytes(b"nope")
        with pytest.raises(ValueError):
            load_cfs(target)
