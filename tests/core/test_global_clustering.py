"""Tests for Phase 3: agglomerative CF clustering and CF-k-means."""

import numpy as np
import pytest

from repro.core.distances import Metric, distance
from repro.core.features import CF
from repro.core.global_clustering import CFKMeans, agglomerative_cf


def blob_entries(rng, centers, per_center=5, spread=0.3, points_each=4):
    """CF entries sampled around given centers."""
    entries = []
    truth = []
    for label, center in enumerate(centers):
        for _ in range(per_center):
            pts = rng.normal(center, spread, size=(points_each, 2))
            entries.append(CF.from_points(pts))
            truth.append(label)
    return entries, np.array(truth)


class TestAgglomerative:
    def test_recovers_separated_blobs(self, rng):
        centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]
        entries, truth = blob_entries(rng, centers)
        result = agglomerative_cf(entries, n_clusters=3)
        assert result.n_clusters == 3
        # Entries from the same blob must share a label.
        for label in range(3):
            blob_labels = set(result.labels[truth == label])
            assert len(blob_labels) == 1

    @pytest.mark.parametrize("metric", list(Metric))
    def test_all_metrics_work(self, metric, rng):
        centers = [(0.0, 0.0), (30.0, 0.0)]
        entries, truth = blob_entries(rng, centers)
        result = agglomerative_cf(entries, n_clusters=2, metric=metric)
        assert result.n_clusters == 2
        for label in range(2):
            assert len(set(result.labels[truth == label])) == 1

    def test_cluster_cfs_are_exact_sums(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        result = agglomerative_cf(entries, n_clusters=2)
        for cluster_id, cluster in enumerate(result.clusters):
            members = [
                entries[i]
                for i in range(len(entries))
                if result.labels[i] == cluster_id
            ]
            total = members[0].copy()
            for cf in members[1:]:
                total.merge_inplace(cf)
            assert cluster.allclose(total, rtol=1e-8, atol=1e-8)

    def test_conservation(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        result = agglomerative_cf(entries, n_clusters=2)
        result.check_conservation(entries)

    def test_k_equal_m_returns_singletons(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0)], per_center=4)
        result = agglomerative_cf(entries, n_clusters=4)
        assert result.n_clusters == 4
        assert sorted(result.labels) == [0, 1, 2, 3]

    def test_k_greater_than_m(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0)], per_center=3)
        result = agglomerative_cf(entries, n_clusters=10)
        assert result.n_clusters == 3

    def test_k_one_merges_everything(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (5.0, 5.0)])
        result = agglomerative_cf(entries, n_clusters=1)
        assert result.n_clusters == 1
        assert result.clusters[0].n == sum(cf.n for cf in entries)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cf([], n_clusters=1)

    def test_invalid_k_rejected(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0)])
        with pytest.raises(ValueError):
            agglomerative_cf(entries, n_clusters=0)

    def test_merge_order_is_greedy_closest_first(self):
        """With three entries where two are very close, those merge first."""
        a = CF.from_point(np.array([0.0, 0.0]))
        b = CF.from_point(np.array([0.1, 0.0]))
        c = CF.from_point(np.array([100.0, 0.0]))
        result = agglomerative_cf([a, b, c], n_clusters=2)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] != result.labels[0]

    def test_centroids_shape(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        result = agglomerative_cf(entries, n_clusters=2)
        assert result.centroids.shape == (2, 2)


class TestCFKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = [(0.0, 0.0), (25.0, 0.0), (0.0, 25.0)]
        entries, truth = blob_entries(rng, centers)
        result = CFKMeans(n_clusters=3, seed=1).fit(entries)
        assert result.n_clusters == 3
        for label in range(3):
            assert len(set(result.labels[truth == label])) == 1

    def test_weighting_by_point_count(self, rng):
        """A heavy entry pulls its cluster centroid toward itself."""
        heavy = CF.from_points(np.tile([0.0, 0.0], (100, 1)))
        light = CF.from_points(np.tile([1.0, 0.0], (2, 1)))
        result = CFKMeans(n_clusters=1, seed=0).fit([heavy, light])
        centroid = result.clusters[0].centroid
        assert centroid[0] == pytest.approx(2.0 / 102.0, abs=1e-9)

    def test_conservation(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        result = CFKMeans(n_clusters=2, seed=0).fit(entries)
        result.check_conservation(entries)

    def test_deterministic_given_seed(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        a = CFKMeans(n_clusters=2, seed=7).fit(entries)
        b = CFKMeans(n_clusters=2, seed=7).fit(entries)
        assert np.array_equal(a.labels, b.labels)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            CFKMeans(n_clusters=2).fit([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CFKMeans(n_clusters=0)
        with pytest.raises(ValueError):
            CFKMeans(n_clusters=2, max_iter=0)

    def test_more_clusters_than_entries(self, rng):
        entries, _ = blob_entries(rng, [(0.0, 0.0)], per_center=2)
        result = CFKMeans(n_clusters=10, seed=0).fit(entries)
        assert result.n_clusters <= 2


class TestQualityAgainstGreedyBound:
    def test_hierarchical_beats_random_assignment(self, rng):
        """Sanity: agglomerative D2 clustering has lower within-cluster
        spread than a random labelling of the same entries."""
        centers = [(0.0, 0.0), (12.0, 0.0), (0.0, 12.0), (12.0, 12.0)]
        entries, _ = blob_entries(rng, centers, per_center=6)
        result = agglomerative_cf(entries, n_clusters=4)
        got = sum(cf.sum_squared_deviation for cf in result.clusters)

        rng2 = np.random.default_rng(0)
        random_labels = rng2.integers(0, 4, size=len(entries))
        random_ssd = 0.0
        for c in range(4):
            members = [entries[i] for i in np.nonzero(random_labels == c)[0]]
            if not members:
                continue
            total = members[0].copy()
            for cf in members[1:]:
                total.merge_inplace(cf)
            random_ssd += total.sum_squared_deviation
        assert got < random_ssd


class TestCFMedoids:
    def test_recovers_separated_blobs(self, rng):
        from repro.core.global_clustering import CFMedoids

        centers = [(0.0, 0.0), (25.0, 0.0), (0.0, 25.0)]
        entries, truth = blob_entries(rng, centers)
        result = CFMedoids(n_clusters=3).fit(entries)
        assert result.n_clusters == 3
        for label in range(3):
            assert len(set(result.labels[truth == label])) == 1

    def test_weighted_medoid_choice(self):
        """The medoid lands on the heavy entry, not the geometric middle."""
        import numpy as np

        from repro.core.features import CF
        from repro.core.global_clustering import CFMedoids

        heavy = CF.from_points(np.tile([0.0, 0.0], (100, 1)))
        light_a = CF.from_points(np.tile([4.0, 0.0], (2, 1)))
        light_b = CF.from_points(np.tile([8.0, 0.0], (2, 1)))
        result = CFMedoids(n_clusters=1).fit([heavy, light_a, light_b])
        assert result.n_clusters == 1
        assert result.clusters[0].n == 104

    def test_conservation(self, rng):
        from repro.core.global_clustering import CFMedoids

        entries, _ = blob_entries(rng, [(0.0, 0.0), (9.0, 9.0)])
        result = CFMedoids(n_clusters=2).fit(entries)
        result.check_conservation(entries)

    def test_empty_input_rejected(self):
        from repro.core.global_clustering import CFMedoids

        with pytest.raises(ValueError):
            CFMedoids(n_clusters=2).fit([])

    def test_pipeline_with_medoids(self, rng):
        import numpy as np

        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        pts = np.concatenate(
            [rng.normal(c, 0.4, (60, 2)) for c in ((0, 0), (12, 0))]
        )
        result = Birch(
            BirchConfig(n_clusters=2, phase3_algorithm="medoids")
        ).fit(pts)
        assert result.n_clusters == 2
