"""Tests for tree rebuilding and the Reducibility Theorem properties."""

import numpy as np
import pytest

from repro.core.features import CF
from repro.core.rebuild import rebuild_tree
from repro.core.tree import CFTree
from repro.pagestore.iostats import IOStats
from repro.pagestore.memory import MemoryBudget
from repro.pagestore.page import PageLayout


def build_tree(
    points: np.ndarray,
    threshold: float = 0.0,
    page_size: int = 128,
    budget: MemoryBudget | None = None,
    stats: IOStats | None = None,
) -> CFTree:
    layout = PageLayout(page_size=page_size, dimensions=2)
    tree = CFTree(layout, threshold=threshold, budget=budget, stats=stats)
    for p in points:
        tree.insert_point(p)
    return tree


class TestReducibility:
    """Section 5.1.1: rebuilding with T' >= T must not grow the tree."""

    def test_leaf_entries_never_increase(self, rng):
        pts = rng.normal(size=(300, 2)) * 10
        tree = build_tree(pts, threshold=0.2)
        before = len(tree.leaf_entries())
        rebuilt = rebuild_tree(tree, 0.6)
        assert len(rebuilt.leaf_entries()) <= before

    def test_conservation_of_points(self, rng):
        pts = rng.normal(size=(250, 2)) * 10
        tree = build_tree(pts, threshold=0.1)
        direct = CF.from_points(pts)
        rebuilt = rebuild_tree(tree, 0.5)
        summary = rebuilt.summary_cf()
        assert summary.n == direct.n
        assert np.allclose(summary.ls, direct.ls, rtol=1e-8)
        assert summary.ss == pytest.approx(direct.ss, rel=1e-8)

    def test_same_threshold_rebuild_is_legal(self, rng):
        pts = rng.normal(size=(100, 2)) * 5
        tree = build_tree(pts, threshold=0.3)
        rebuilt = rebuild_tree(tree, 0.3)
        assert rebuilt.summary_cf().n == 100

    def test_smaller_threshold_rejected(self, rng):
        tree = build_tree(rng.normal(size=(50, 2)), threshold=0.5)
        with pytest.raises(ValueError, match="Reducibility"):
            rebuild_tree(tree, 0.4)

    def test_invariants_after_rebuild(self, rng):
        pts = rng.normal(size=(400, 2)) * 20
        tree = build_tree(pts, threshold=0.1)
        rebuilt = rebuild_tree(tree, 1.0)
        rebuilt.check_invariants()

    def test_repeated_rebuilds_shrink_monotonically(self, rng):
        pts = rng.normal(size=(500, 2)) * 10
        tree = build_tree(pts, threshold=0.05)
        sizes = [len(tree.leaf_entries())]
        threshold = 0.05
        for _ in range(4):
            threshold *= 3.0
            tree = rebuild_tree(tree, threshold)
            sizes.append(len(tree.leaf_entries()))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] < sizes[0]


class TestMemoryAccounting:
    def test_old_pages_released(self, rng):
        layout = PageLayout(page_size=128, dimensions=2)
        budget = MemoryBudget(1024 * 1024, layout)
        tree = build_tree(
            rng.normal(size=(300, 2)) * 10, threshold=0.1, budget=budget
        )
        rebuilt = rebuild_tree(tree, 0.8)
        # Only the new tree's pages remain allocated.
        assert budget.pages_in_use == rebuilt.node_count

    def test_transient_pages_restored(self, rng):
        layout = PageLayout(page_size=128, dimensions=2)
        budget = MemoryBudget(1024 * 1024, layout, transient_pages=3)
        tree = build_tree(
            rng.normal(size=(100, 2)) * 10, threshold=0.1, budget=budget
        )
        rebuild_tree(tree, 0.5)
        assert budget.transient_pages == 3

    def test_peak_bounded_by_old_size_plus_height(self, rng):
        layout = PageLayout(page_size=128, dimensions=2)
        budget = MemoryBudget(1024 * 1024, layout)
        tree = build_tree(
            rng.normal(size=(400, 2)) * 20, threshold=0.05, budget=budget
        )
        old_pages = budget.pages_in_use
        old_height = tree.tree_stats().height
        budget._peak_pages = budget.pages_in_use  # reset peak to now
        rebuild_tree(tree, 0.4)
        # Reducibility: at most ~h extra pages in flight beyond the old
        # tree (a root path of the new tree plus split slack).
        assert budget.peak_pages <= old_pages + 2 * old_height + 4


class TestOutlierDiversion:
    def test_sink_receives_sparse_entries(self, rng):
        # 200 dense points and a handful of far-flung strays.
        dense = rng.normal(0, 0.5, size=(200, 2))
        strays = rng.uniform(50, 100, size=(5, 2))
        pts = np.concatenate([dense, strays])
        tree = build_tree(pts, threshold=0.5)

        spilled: list[CF] = []

        def sink(cf: CF) -> bool:
            spilled.append(cf)
            return True

        def predicate(cf: CF, mean_points: float) -> bool:
            return mean_points > 1.0 and cf.n < 0.25 * mean_points

        rebuilt = rebuild_tree(tree, 2.0, outlier_sink=sink, outlier_predicate=predicate)
        total = rebuilt.summary_cf().n + sum(cf.n for cf in spilled)
        assert total == 205
        assert spilled  # the strays are far sparser than the dense blob

    def test_rejected_spills_are_reinserted(self, rng):
        pts = np.concatenate(
            [rng.normal(0, 0.5, size=(100, 2)), rng.uniform(50, 99, size=(4, 2))]
        )
        tree = build_tree(pts, threshold=0.5)
        rebuilt = rebuild_tree(
            tree,
            2.0,
            outlier_sink=lambda cf: False,  # disk always full
            outlier_predicate=lambda cf, mean: cf.n < 0.25 * mean,
        )
        assert rebuilt.summary_cf().n == 104


class TestStats:
    def test_rebuild_recorded(self, rng):
        stats = IOStats()
        tree = build_tree(rng.normal(size=(100, 2)) * 5, threshold=0.1, stats=stats)
        rebuild_tree(tree, 0.5)
        assert stats.tree_rebuilds == 1
