"""Tests for Phase 4 refinement."""

import numpy as np
import pytest

from repro.core.refinement import refine
from repro.pagestore.iostats import IOStats


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate([rng.normal(c, 0.5, size=(60, 2)) for c in centers])
    return points, centers


class TestAssignment:
    def test_perfect_seeds_label_correctly(self, blobs):
        points, centers = blobs
        result = refine(points, centers, passes=1)
        expected = np.repeat(np.arange(3), 60)
        assert np.array_equal(result.labels, expected)

    def test_zero_passes_is_pure_labelling(self, blobs):
        points, centers = blobs
        result = refine(points, centers, passes=0)
        assert result.passes_run == 0
        assert np.allclose(result.centroids, centers)
        assert result.labels.shape == (180,)

    def test_offset_seeds_recover_centroids(self, blobs, rng):
        points, centers = blobs
        noisy_seeds = centers + rng.normal(0, 1.0, centers.shape)
        result = refine(points, noisy_seeds, passes=5)
        # Each refined centroid lands near a true center.
        for c in centers:
            dist = np.linalg.norm(result.centroids - c, axis=1).min()
            assert dist < 0.3

    def test_convergence_flag(self, blobs):
        points, centers = blobs
        result = refine(points, centers, passes=10)
        assert result.converged
        assert result.passes_run < 10

    def test_cluster_cfs_match_labels(self, blobs):
        points, centers = blobs
        result = refine(points, centers, passes=1)
        for c, cf in enumerate(result.clusters):
            mask = result.labels == c
            assert cf.n == int(mask.sum())
            if cf.n:
                assert np.allclose(cf.centroid, points[mask].mean(axis=0))


class TestRefinementImprovesCost:
    def test_passes_do_not_increase_inertia(self, blobs, rng):
        points, centers = blobs
        seeds = centers + rng.normal(0, 2.0, centers.shape)

        def inertia(centroids, labels):
            keep = labels >= 0
            return float(
                ((points[keep] - centroids[labels[keep]]) ** 2).sum()
            )

        one = refine(points, seeds, passes=1)
        many = refine(points, seeds, passes=8)
        assert inertia(many.centroids, many.labels) <= inertia(
            one.centroids, one.labels
        ) + 1e-9


class TestOutlierDiscard:
    def test_far_points_discarded(self, rng):
        cluster = rng.normal(0, 0.5, size=(100, 2))
        stray = np.array([[30.0, 30.0]])
        points = np.concatenate([cluster, stray])
        seeds = np.array([[0.0, 0.0]])
        result = refine(
            points, seeds, passes=1, discard_outliers=True, outlier_factor=2.0
        )
        assert result.discarded >= 1
        assert result.labels[-1] == -1

    def test_discarded_points_excluded_from_clusters(self, rng):
        cluster = rng.normal(0, 0.5, size=(100, 2))
        stray = np.array([[30.0, 30.0]])
        points = np.concatenate([cluster, stray])
        result = refine(
            points,
            np.array([[0.0, 0.0]]),
            passes=1,
            discard_outliers=True,
            outlier_factor=2.0,
        )
        assert result.clusters[0].n == 101 - result.discarded

    def test_no_discard_by_default(self, blobs):
        points, centers = blobs
        result = refine(points, centers, passes=1)
        assert result.discarded == 0
        assert (result.labels >= 0).all()


class TestAccounting:
    def test_each_pass_records_a_scan(self, blobs):
        points, centers = blobs
        stats = IOStats()
        result = refine(points, centers, passes=3, stats=stats)
        # Initial labelling scan plus one per executed pass.
        assert stats.data_scans == 1 + result.passes_run


class TestValidation:
    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            refine(rng.normal(size=(10, 2)), rng.normal(size=(2, 3)))

    def test_non_2d_points_rejected(self, rng):
        with pytest.raises(ValueError):
            refine(rng.normal(size=10), rng.normal(size=(2, 2)))

    def test_negative_passes_rejected(self, rng):
        with pytest.raises(ValueError):
            refine(rng.normal(size=(10, 2)), rng.normal(size=(2, 2)), passes=-1)

    def test_empty_cluster_keeps_seed(self, rng):
        points = rng.normal(0, 0.1, size=(20, 2))
        seeds = np.array([[0.0, 0.0], [100.0, 100.0]])
        result = refine(points, seeds, passes=2)
        # The far seed attracts nothing and must stay put.
        assert np.allclose(result.centroids[1], [100.0, 100.0])
