"""Deterministic tie-breaking in ``Birch.predict``.

Documented rule: among exactly equidistant centroids, the lowest
cluster index wins.  The construction below makes the tie *exact* in
float64 — cluster means land on (0, 0) and (8, 0) with no rounding
(sums of small integers divided by 2), and the query (4, 0) is dead
centre, so both squared distances are the same bit pattern.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig


def _tie_fit(backend: str) -> Birch:
    points = np.array(
        [[-1.0, 0.0], [1.0, 0.0], [7.0, 0.0], [9.0, 0.0]], dtype=np.float64
    )
    estimator = Birch(
        BirchConfig(
            n_clusters=2,
            memory_bytes=64 * 1024,
            cf_backend=backend,
            initial_threshold=3.0,
            phase4_passes=0,
        )
    )
    estimator.fit(points)
    return estimator


@pytest.mark.parametrize("backend", ["classic", "stable"])
def test_equidistant_point_takes_lowest_cluster_index(backend):
    estimator = _tie_fit(backend)
    centroids = estimator.result.centroids
    # Preconditions: the fit produced the exact centroids the tie needs.
    assert sorted(map(tuple, centroids.tolist())) == [(0.0, 0.0), (8.0, 0.0)]
    query = np.array([[4.0, 0.0]])
    d2 = ((query - centroids) ** 2).sum(axis=1)
    assert d2[0] == d2[1]  # exact, not approximate
    assert estimator.predict(query)[0] == 0
    estimator.close()


@pytest.mark.parametrize("backend", ["classic", "stable"])
def test_tie_rule_is_stable_across_batches(backend):
    estimator = _tie_fit(backend)
    queries = np.tile([[4.0, 0.0]], (1000, 1))
    labels = estimator.predict(queries)
    assert np.all(labels == 0)
    estimator.close()
