"""StableCF algebra, backend plumbing, and brute-force metric cross-checks.

Three layers of coverage:

* the ``(n, mean, SSD)`` algebra itself — constructors, Welford/Chan
  updates, subtraction, conversion to/from the classic triple;
* the brute-force ground truth — D0-D4 computed from CFs (both
  backends) must equal the Section 3 raw-point definitions on random
  small clusters, and the vectorised merged-radius/diameter kernels
  must agree with merge-then-read;
* the backend switch end to end — nodes, trees, rebuild, tree merging,
  Phase 3/4, diagnostics and serialisation all honouring ``cf_backend``.
"""

import math

import numpy as np
import pytest

from repro.core.distances import (
    Metric,
    distance,
    merged_diameter,
    merged_radius,
    stable_merged_diameter,
    stable_merged_radius,
)
from repro.core.features import CF, CF_BACKENDS, StableCF, coerce_backend
from repro.core.node import CFNode
from repro.core.tree import CFTree
from repro.pagestore.page import PageLayout

ALL_METRICS = list(Metric)
BACKENDS = sorted(CF_BACKENDS)


# -- raw-point ground truth ---------------------------------------------------


def brute_force_distance(a: np.ndarray, b: np.ndarray, metric: Metric) -> float:
    """D0-D4 evaluated literally from the Section 3 definitions."""
    ca, cb = a.mean(axis=0), b.mean(axis=0)
    if metric is Metric.D0_EUCLIDEAN:
        return float(np.linalg.norm(ca - cb))
    if metric is Metric.D1_MANHATTAN:
        return float(np.abs(ca - cb).sum())
    if metric is Metric.D2_AVG_INTERCLUSTER:
        diff = a[:, None, :] - b[None, :, :]
        sq = (diff**2).sum(axis=2)
        return math.sqrt(sq.mean())
    if metric is Metric.D3_AVG_INTRACLUSTER:
        merged = np.concatenate([a, b])
        n = merged.shape[0]
        diff = merged[:, None, :] - merged[None, :, :]
        sq = (diff**2).sum(axis=2)
        return math.sqrt(sq.sum() / (n * (n - 1)))
    if metric is Metric.D4_VARIANCE_INCREASE:

        def ssd(x):
            return float(((x - x.mean(axis=0)) ** 2).sum())

        merged = np.concatenate([a, b])
        return math.sqrt(max(ssd(merged) - ssd(a) - ssd(b), 0.0))
    raise AssertionError(metric)


class TestBruteForceCrossCheck:
    """CF-derived distances equal the raw-point definitions, both backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("metric", ALL_METRICS)
    @pytest.mark.parametrize("trial", range(5))
    def test_distance_matches_raw_points(self, backend, metric, trial, rng):
        cls = CF_BACKENDS[backend]
        d = int(rng.integers(1, 5))
        a = rng.normal(rng.normal(0, 3), 1.0, size=(int(rng.integers(2, 9)), d))
        b = rng.normal(rng.normal(0, 3), 1.0, size=(int(rng.integers(2, 9)), d))
        want = brute_force_distance(a, b, metric)
        got = distance(cls.from_points(a), cls.from_points(b), metric)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_radius_diameter_match_raw_points(self, backend, rng):
        cls = CF_BACKENDS[backend]
        pts = rng.normal(2.0, 1.5, size=(40, 3))
        cf = cls.from_points(pts)
        centroid = pts.mean(axis=0)
        want_r = math.sqrt(float(((pts - centroid) ** 2).sum()) / len(pts))
        diff = pts[:, None, :] - pts[None, :, :]
        sq = (diff**2).sum(axis=2)
        want_d = math.sqrt(sq.sum() / (len(pts) * (len(pts) - 1)))
        assert cf.radius == pytest.approx(want_r, rel=1e-9)
        assert cf.diameter == pytest.approx(want_d, rel=1e-9)
        np.testing.assert_allclose(cf.centroid, centroid, rtol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merged_kernels_agree_with_merge_then_read(self, backend, rng):
        """Vectorised merged_radius/merged_diameter == scalar merge+read."""
        cls = CF_BACKENDS[backend]
        probe = cls.from_points(rng.normal(1.0, 1.0, size=(7, 2)))
        targets = [
            cls.from_points(rng.normal(c, 1.0, size=(int(rng.integers(2, 6)), 2)))
            for c in (0.0, 3.0, -2.0, 8.0)
        ]
        ns = np.array([cf.n for cf in targets], dtype=np.float64)
        if backend == "stable":
            vec = np.stack([cf.mean for cf in targets])
            sq = np.array([cf.ssd for cf in targets])
            got_d = stable_merged_diameter(probe, ns, vec, sq)
            got_r = stable_merged_radius(probe, ns, vec, sq)
        else:
            vec = np.stack([cf.ls for cf in targets])
            sq = np.array([cf.ss for cf in targets])
            got_d = merged_diameter(probe, ns, vec, sq)
            got_r = merged_radius(probe, ns, vec, sq)
        for i, cf in enumerate(targets):
            merged = probe.merge(cf)
            assert got_d[i] == pytest.approx(merged.diameter, rel=1e-9, abs=1e-12)
            assert got_r[i] == pytest.approx(merged.radius, rel=1e-9, abs=1e-12)


# -- StableCF algebra ---------------------------------------------------------


class TestStableCFAlgebra:
    def test_from_point(self):
        cf = StableCF.from_point([1.0, -2.0])
        assert cf.n == 1
        np.testing.assert_array_equal(cf.mean, [1.0, -2.0])
        assert cf.ssd == 0.0
        assert cf.radius == 0.0
        assert cf.diameter == 0.0

    def test_welford_matches_two_pass(self, rng):
        pts = rng.normal(5.0, 2.0, size=(60, 3))
        batch = StableCF.from_points(pts)
        acc = StableCF.empty(3)
        for row in pts:
            acc.add_point(row)
        assert acc.allclose(batch, rtol=1e-9, atol=1e-9)

    def test_merge_matches_from_points(self, rng):
        a_pts = rng.normal(0.0, 1.0, size=(10, 2))
        b_pts = rng.normal(6.0, 2.0, size=(17, 2))
        merged = StableCF.from_points(a_pts).merge(StableCF.from_points(b_pts))
        want = StableCF.from_points(np.concatenate([a_pts, b_pts]))
        assert merged.allclose(want, rtol=1e-9, atol=1e-9)

    def test_merge_inplace_and_operators(self, rng):
        a = StableCF.from_points(rng.normal(0, 1, size=(5, 2)))
        b = StableCF.from_points(rng.normal(3, 1, size=(8, 2)))
        via_add = a + b
        acc = a.copy()
        acc += b
        assert acc.allclose(via_add)
        assert a.n == 5  # operands untouched

    def test_merge_with_empty_is_identity(self):
        cf = StableCF.from_points([[1.0, 2.0], [3.0, 4.0]])
        out = cf.merge(StableCF.empty(2))
        assert out.allclose(cf)
        out2 = StableCF.empty(2).merge(cf)
        assert out2.allclose(cf)

    def test_subtract_inverts_merge(self, rng):
        a = StableCF.from_points(rng.normal(0, 1, size=(12, 2)))
        b = StableCF.from_points(rng.normal(5, 1, size=(7, 2)))
        merged = a.merge(b)
        rest = merged.subtract(b)
        assert rest.n == a.n
        np.testing.assert_allclose(rest.mean, a.mean, rtol=1e-9, atol=1e-9)
        assert rest.ssd == pytest.approx(a.ssd, rel=1e-6, abs=1e-9)

    def test_subtract_all_gives_empty(self):
        cf = StableCF.from_points([[1.0, 1.0], [2.0, 2.0]])
        rest = cf.subtract(cf)
        assert rest.n == 0

    def test_subtract_too_many_raises(self):
        small = StableCF.from_point([0.0])
        big = StableCF.from_points([[0.0], [1.0]])
        with pytest.raises(ValueError, match="cannot subtract"):
            small.subtract(big)

    def test_negative_ssd_rejected_residue_clamped(self):
        with pytest.raises(ValueError, match="SSD"):
            StableCF(2, np.zeros(2), -1.0)
        cf = StableCF(2, np.zeros(2), -1e-12)  # round-off residue
        assert cf.ssd == 0.0

    def test_duplicate_points_keep_exact_zero_ssd(self):
        """Exact duplicates must stay mergeable at T=0: delta is exactly
        zero, so SSD never picks up a residue."""
        point = np.array([3.14159, -2.71828]) + 1e8
        acc = StableCF.from_point(point)
        for _ in range(1000):
            acc.add_point(point)
        assert acc.ssd == 0.0
        assert acc.diameter == 0.0


class TestBackendConversion:
    def test_round_trip_classic_stable_classic(self, rng):
        pts = rng.normal(3.0, 1.0, size=(20, 2))
        classic = CF.from_points(pts)
        back = classic.to_stable().to_classic()
        assert back.n == classic.n
        np.testing.assert_allclose(back.ls, classic.ls, rtol=1e-12)
        assert back.ss == pytest.approx(classic.ss, rel=1e-12)

    def test_stable_classic_exports(self, rng):
        pts = rng.normal(2.0, 1.0, size=(15, 3))
        stable = StableCF.from_points(pts)
        np.testing.assert_allclose(stable.ls, pts.sum(axis=0), rtol=1e-9)
        assert stable.ss == pytest.approx(float((pts**2).sum()), rel=1e-9)

    def test_coerce_backend(self):
        classic = CF.from_point([1.0, 2.0])
        stable = StableCF.from_point([1.0, 2.0])
        assert coerce_backend(classic, "classic") is classic
        assert coerce_backend(stable, "stable") is stable
        assert isinstance(coerce_backend(classic, "stable"), StableCF)
        assert isinstance(coerce_backend(stable, "classic"), CF)
        with pytest.raises(ValueError, match="unknown cf_backend"):
            coerce_backend(classic, "fancy")

    def test_empty_conversion(self):
        assert CF.empty(3).to_stable().n == 0
        assert StableCF.empty(3).to_classic().n == 0

    def test_mixed_backend_merge_raises(self):
        stable = StableCF.from_point([1.0])
        classic = CF.from_point([1.0])
        with pytest.raises(TypeError, match="to_stable"):
            stable.merge(classic)

    def test_distance_accepts_mixed_pair(self):
        a = CF.from_points([[0.0, 0.0], [1.0, 0.0]])
        b = StableCF.from_points([[5.0, 0.0], [6.0, 0.0]])
        got = distance(a, b, Metric.D0_EUCLIDEAN)
        assert got == pytest.approx(5.0)


# -- backend plumbing through node / tree / pipeline --------------------------


class TestStableNode:
    def test_views_are_backend_gated(self, small_layout_2d):
        stable_node = CFNode(small_layout_2d, is_leaf=True, cf_backend="stable")
        with pytest.raises(AttributeError, match="'ls' view"):
            stable_node.ls
        classic_node = CFNode(small_layout_2d, is_leaf=True)
        with pytest.raises(AttributeError, match="'means' view"):
            classic_node.means

    def test_entries_coerced_and_summarised(self, small_layout_2d, rng):
        node = CFNode(small_layout_2d, is_leaf=True, cf_backend="stable")
        clouds = [rng.normal(c, 1.0, size=(9, 2)) for c in (0.0, 5.0, -4.0)]
        for cloud in clouds:
            node.append_entry(CF.from_points(cloud))  # classic in, coerced
        assert all(isinstance(cf, StableCF) for cf in node.iter_entry_cfs())
        summary = node.summary_cf()
        want = StableCF.from_points(np.concatenate(clouds))
        assert summary.n == want.n
        np.testing.assert_allclose(summary.mean, want.mean, rtol=1e-9)
        assert summary.ssd == pytest.approx(want.ssd, rel=1e-9)

    def test_add_to_entry_chan_update(self, small_layout_2d, rng):
        node = CFNode(small_layout_2d, is_leaf=True, cf_backend="stable")
        a = rng.normal(0.0, 1.0, size=(6, 2))
        b = rng.normal(2.0, 1.0, size=(11, 2))
        node.append_entry(StableCF.from_points(a))
        node.add_to_entry(0, StableCF.from_points(b))
        want = StableCF.from_points(np.concatenate([a, b]))
        assert node.entry_cf(0).allclose(want, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("metric", ALL_METRICS)
    def test_entry_distances_match_scalar(self, small_layout_2d, metric, rng):
        node = CFNode(small_layout_2d, is_leaf=True, cf_backend="stable")
        for c in (0.0, 4.0, -3.0):
            node.append_entry(StableCF.from_points(rng.normal(c, 1.0, size=(5, 2))))
        probe = StableCF.from_points(rng.normal(1.0, 1.0, size=(4, 2)))
        got = node.entry_distances(probe, metric)
        for i in range(node.size):
            want = distance(probe, node.entry_cf(i), metric)
            assert got[i] == pytest.approx(want, rel=1e-9, abs=1e-12)


class TestStableTree:
    def test_tree_validates_backend(self, small_layout_2d):
        with pytest.raises(ValueError, match="unknown cf_backend"):
            CFTree(small_layout_2d, cf_backend="bogus")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tree_conserves_points(self, small_layout_2d, backend, rng):
        pts = rng.normal(0.0, 5.0, size=(400, 2))
        tree = CFTree(small_layout_2d, threshold=1.0, cf_backend=backend)
        tree.insert_points(pts)
        tree.check_invariants()
        assert tree.points == 400
        total = tree.summary_cf()
        np.testing.assert_allclose(total.centroid, pts.mean(axis=0), rtol=1e-9)

    def test_stable_tree_duplicates_collapse_at_zero_threshold(self):
        layout = PageLayout(page_size=256, dimensions=2)
        tree = CFTree(layout, threshold=0.0, cf_backend="stable")
        point = np.array([1.5, -0.5]) + 1e8
        for _ in range(5000):
            tree.insert_point(point)
        entries = tree.leaf_entries()
        assert len(entries) == 1
        assert entries[0].n == 5000

    def test_insert_classic_cf_into_stable_tree(self, small_layout_2d, rng):
        tree = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        cf = CF.from_points(rng.normal(0, 1, size=(10, 2)))
        tree.insert_cf(cf)
        entries = tree.leaf_entries()
        assert len(entries) == 1
        assert isinstance(entries[0], StableCF)
        assert entries[0].n == 10

    def test_rebuild_preserves_backend(self, small_layout_2d, rng):
        from repro.core.rebuild import rebuild_tree

        tree = CFTree(small_layout_2d, threshold=0.5, cf_backend="stable")
        tree.insert_points(rng.normal(0.0, 5.0, size=(200, 2)))
        rebuilt = rebuild_tree(tree, 1.5)
        assert rebuilt.cf_backend == "stable"
        rebuilt.check_invariants()
        assert rebuilt.points == 200

    def test_merge_trees_backend_mismatch_raises(self, small_layout_2d, rng):
        from repro.core.merge import merge_trees

        a = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        b = CFTree(small_layout_2d, threshold=1.0, cf_backend="classic")
        a.insert_points(rng.normal(0, 1, size=(20, 2)))
        b.insert_points(rng.normal(5, 1, size=(20, 2)))
        with pytest.raises(ValueError, match="cf-backend mismatch"):
            merge_trees([a, b])

    def test_merge_trees_stable(self, small_layout_2d, rng):
        from repro.core.merge import merge_trees

        a = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        b = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        a.insert_points(rng.normal(0, 1, size=(30, 2)))
        b.insert_points(rng.normal(8, 1, size=(25, 2)))
        merged = merge_trees([a, b])
        assert merged.cf_backend == "stable"
        assert merged.points == 55

    def test_diagnostics_report_backend(self, small_layout_2d, rng):
        from repro.core.diagnostics import diagnose

        tree = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        tree.insert_points(rng.normal(0, 3, size=(100, 2)))
        report = diagnose(tree)
        assert report.cf_backend == "stable"
        assert any("stable" in line for line in report.summary_lines())


class TestStablePipeline:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_pipeline_both_backends(self, backend, blob_points):
        from repro.core.birch import Birch
        from repro.core.config import BirchConfig

        config = BirchConfig(n_clusters=3, cf_backend=backend)
        result = Birch(config).fit(blob_points)
        assert result.n_clusters == 3
        xs = np.sort(result.centroids[:, 0])
        np.testing.assert_allclose(xs, [0.0, 5.0, 10.0], atol=1.0)

    def test_agglomerative_cf_stable_entries(self, rng):
        from repro.core.global_clustering import agglomerative_cf

        entries = [
            StableCF.from_points(rng.normal(c, 0.5, size=(10, 2)))
            for c in (0.0, 0.5, 10.0, 10.5)
        ]
        clustering = agglomerative_cf(entries, n_clusters=2)
        assert clustering.n_clusters == 2
        assert all(isinstance(cf, StableCF) for cf in clustering.clusters)
        clustering.check_conservation(entries)
        xs = np.sort(clustering.centroids[:, 0])
        np.testing.assert_allclose(xs, [0.25, 10.25], atol=0.5)

    def test_refine_stable_backend(self, blob_points):
        from repro.core.refinement import refine

        seeds = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]])
        result = refine(blob_points, seeds, passes=2, cf_backend="stable")
        assert all(isinstance(cf, StableCF) for cf in result.clusters)
        assert sum(cf.n for cf in result.clusters) == len(blob_points)

    def test_refine_rejects_unknown_backend(self, blob_points):
        from repro.core.refinement import refine

        with pytest.raises(ValueError, match="unknown cf_backend"):
            refine(blob_points, blob_points[:3], cf_backend="wat")


class TestStableSerialization:
    def test_cfs_round_trip_stable(self, tmp_path, rng):
        from repro.core.serialization import load_cfs, save_cfs

        cfs = [
            StableCF.from_points(rng.normal(c, 1.0, size=(8, 2)))
            for c in (0.0, 5.0)
        ]
        path = tmp_path / "stable.npz"
        save_cfs(path, cfs)
        loaded = load_cfs(path)
        assert all(isinstance(cf, StableCF) for cf in loaded)
        for got, want in zip(loaded, cfs):
            assert got.allclose(want)

    def test_classic_archives_stay_version_1(self, tmp_path):
        from repro.core.serialization import save_cfs

        path = tmp_path / "classic.npz"
        save_cfs(path, [CF.from_point([1.0, 2.0])])
        with np.load(path) as data:
            assert int(data["version"]) == 1
            assert "ls" in data and "means" not in data

    def test_stable_archives_are_version_2(self, tmp_path):
        from repro.core.serialization import save_cfs

        path = tmp_path / "stable.npz"
        save_cfs(path, [StableCF.from_point([1.0, 2.0])])
        with np.load(path) as data:
            assert int(data["version"]) == 2
            assert "means" in data and "ls" not in data

    def test_mixed_backend_list_rejected(self, tmp_path):
        from repro.core.serialization import save_cfs

        with pytest.raises(TypeError, match="mix"):
            save_cfs(
                tmp_path / "mixed.npz",
                [CF.from_point([1.0]), StableCF.from_point([1.0])],
            )

    def test_tree_round_trip_stable(self, tmp_path, small_layout_2d, rng):
        from repro.core.serialization import load_tree, save_tree

        tree = CFTree(small_layout_2d, threshold=1.0, cf_backend="stable")
        tree.insert_points(rng.normal(0.0, 4.0, size=(150, 2)))
        path = tmp_path / "tree.npz"
        save_tree(path, tree)
        loaded = load_tree(path)
        assert loaded.cf_backend == "stable"
        assert loaded.points == tree.points
        got = loaded.summary_cf()
        want = tree.summary_cf()
        np.testing.assert_allclose(got.mean, want.mean, rtol=1e-9)
        assert got.ssd == pytest.approx(want.ssd, rel=1e-9)
