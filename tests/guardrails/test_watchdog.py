"""Tests for the :class:`MemoryWatchdog` rebuild circuit breaker."""

import numpy as np
import pytest

from repro.core import Birch, BirchConfig
from repro.guardrails.watchdog import MemoryWatchdog

pytestmark = pytest.mark.guardrails


class TestEscalation:
    def test_trips_after_consecutive_ineffective_rebuilds(self):
        wd = MemoryWatchdog(escalation_limit=3)
        wd.observe_rebuild(pages_after=10, capacity_pages=5)
        wd.observe_rebuild(pages_after=9, capacity_pages=5)
        assert not wd.degraded
        wd.observe_rebuild(pages_after=8, capacity_pages=5)
        assert wd.degraded

    def test_effective_rebuild_resets_the_streak(self):
        wd = MemoryWatchdog(escalation_limit=2)
        wd.observe_rebuild(10, 5)
        wd.observe_rebuild(4, 5)  # fits: streak resets
        wd.observe_rebuild(10, 5)
        assert not wd.degraded
        wd.observe_rebuild(10, 5)
        assert wd.degraded

    def test_report_counts_lifetime_ineffective_rebuilds(self):
        wd = MemoryWatchdog(escalation_limit=10)
        for _ in range(4):
            wd.observe_rebuild(10, 5)
        report = wd.report()
        assert report.ineffective_rebuilds == 4
        assert not report.degraded
        assert report.escalation_limit == 10

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_limit(self, bad):
        with pytest.raises(ValueError, match="escalation_limit"):
            MemoryWatchdog(escalation_limit=bad)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            MemoryWatchdog(mode="panic")


class TestRecoarsenSchedule:
    def test_never_fires_before_tripping(self):
        wd = MemoryWatchdog(escalation_limit=2)
        assert not wd.should_recoarsen(pages_in_use=100, capacity_pages=5)

    def _tripped(self):
        wd = MemoryWatchdog(escalation_limit=1)
        wd.observe_rebuild(pages_after=10, capacity_pages=5)
        assert wd.degraded
        return wd

    def test_fires_on_doubling_since_last_rebuild(self):
        wd = self._tripped()
        assert not wd.should_recoarsen(pages_in_use=15, capacity_pages=5)
        assert wd.should_recoarsen(pages_in_use=20, capacity_pages=5)

    def test_fires_before_the_hard_cap(self):
        wd = self._tripped()
        margin = MemoryWatchdog.HARD_MARGIN
        assert wd.should_recoarsen(pages_in_use=5 + margin, capacity_pages=5)

    def test_never_fires_while_under_budget(self):
        wd = self._tripped()
        assert not wd.should_recoarsen(pages_in_use=4, capacity_pages=5)

    def test_coarsen_factor_doubles_per_forced_rebuild(self):
        wd = self._tripped()
        start = wd.coarsen_factor
        wd.note_coarsen_rebuild(pages_after=8)
        assert wd.coarsen_factor == 2 * start
        assert wd.report().coarsen_rebuilds == 1


class TestStateRoundTrip:
    def test_counters_and_breaker_survive(self):
        wd = MemoryWatchdog(escalation_limit=2, mode="spill")
        wd.observe_rebuild(10, 5)
        wd.observe_rebuild(10, 5)
        wd.note_coarsen_rebuild(8)
        fresh = MemoryWatchdog(escalation_limit=2, mode="spill")
        fresh.load_state(wd.state_dict())
        assert fresh.degraded
        assert fresh.coarsen_factor == wd.coarsen_factor
        assert fresh.report() == wd.report()


class TestDegradedEndToEnd:
    """The watchdog inside Phase 1, on a budget no rebuild can meet."""

    @pytest.mark.parametrize("mode", ["coarsen", "spill"])
    @pytest.mark.parametrize("backend", ["classic", "stable"])
    def test_pathological_budget_completes_degraded(self, mode, backend, rng):
        points = rng.normal(0.0, 50.0, (1500, 8))
        config = BirchConfig(
            n_clusters=3,
            memory_bytes=400,  # below one 512-byte page: nothing ever fits
            page_size=512,
            rebuild_escalation_limit=3,
            degraded_mode=mode,
            cf_backend=backend,
        )
        result = Birch(config).fit(points)
        assert result.memory_degraded
        assert result.watchdog.degraded
        assert result.watchdog.mode == mode
        assert result.watchdog.coarsen_rebuilds >= 1
        assert result.conservation_ok
        # Degraded, not looping: rebuild count stays far below per-point.
        assert result.rebuilds < 50

    def test_healthy_budget_never_degrades(self, blob_points):
        result = Birch(BirchConfig(n_clusters=3)).fit(blob_points)
        assert not result.memory_degraded
        assert result.watchdog is not None
        assert not result.watchdog.degraded
        assert result.watchdog.coarsen_rebuilds == 0
