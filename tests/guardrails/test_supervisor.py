"""Tests for :func:`run_supervised`: budgets, fallbacks, byte-identity."""

import numpy as np
import pytest

from repro.core import Birch, BirchConfig
from repro.core.global_clustering import agglomerative_cf
from repro.core.refinement import refine
from repro.errors import PhaseTimeoutError
from repro.guardrails import PhaseBudgets, run_supervised

pytestmark = pytest.mark.guardrails


class TestByteIdentity:
    """Acceptance: clean input + no budget trips == plain ``fit``."""

    @pytest.mark.parametrize("backend", ["classic", "stable"])
    def test_unbudgeted_supervised_equals_fit(self, blob_points, backend):
        config = BirchConfig(n_clusters=3, cf_backend=backend)
        plain = Birch(BirchConfig(n_clusters=3, cf_backend=backend)).fit(
            blob_points
        )
        run = run_supervised(blob_points, config)
        assert run.report.status == "ok"
        supervised = run.result
        assert supervised.centroids.tobytes() == plain.centroids.tobytes()
        assert np.array_equal(supervised.labels, plain.labels)
        assert np.array_equal(supervised.entry_labels, plain.entry_labels)
        assert supervised.final_threshold == plain.final_threshold
        assert supervised.accounting() == plain.accounting()

    def test_generous_budgets_also_identical(self, blob_points):
        plain = Birch(BirchConfig(n_clusters=3)).fit(blob_points)
        run = run_supervised(
            blob_points,
            BirchConfig(n_clusters=3),
            PhaseBudgets(
                phase2_seconds=60.0,
                phase3_seconds=60.0,
                phase4_seconds=60.0,
            ),
        )
        assert run.report.status == "ok"
        assert run.result.centroids.tobytes() == plain.centroids.tobytes()
        assert np.array_equal(run.result.labels, plain.labels)


class TestPhase3Fallback:
    def test_deadline_raises_timeout_in_kernel(self, blob_points):
        from repro.core.features import CF

        entries = [CF.from_point(p) for p in blob_points]
        with pytest.raises(PhaseTimeoutError, match="deadline"):
            agglomerative_cf(entries, n_clusters=3, deadline=0.0)

    def test_supervisor_falls_back_to_kmeans(self, blob_points):
        run = run_supervised(
            blob_points,
            BirchConfig(n_clusters=3),
            PhaseBudgets(phase3_seconds=1e-9),
        )
        outcome = run.report.phase("phase3")
        assert outcome.status == "fallback"
        assert "CF-k-means" in outcome.notes[0]
        assert run.result is not None
        assert run.result.n_clusters == 3
        assert run.report.status in ("fallback", "degraded")
        assert run.result.conservation_ok

    def test_untimed_phase3_has_no_deadline_overhead_path(self, blob_points):
        # deadline=None must leave results identical (covered by
        # byte-identity) and never raise.
        run = run_supervised(blob_points, BirchConfig(n_clusters=3))
        assert run.report.phase("phase3").status == "ok"


class TestPhase4Budgets:
    def test_deadline_hits_between_passes_reported_not_raised(self, blob_points):
        centroids = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]])
        result = refine(blob_points, centroids, passes=5, deadline=0.0)
        assert result.deadline_hit
        assert result.passes_run == 0
        assert result.labels.shape == (blob_points.shape[0],)

    def test_supervisor_degrades_on_phase4_deadline(self, blob_points):
        run = run_supervised(
            blob_points,
            BirchConfig(n_clusters=3, phase4_passes=5),
            PhaseBudgets(phase4_seconds=1e-9),
        )
        outcome = run.report.phase("phase4")
        assert outcome.status == "degraded"
        assert run.result is not None
        assert run.result.labels is not None

    def test_max_passes_caps_refinement(self, blob_points):
        run = run_supervised(
            blob_points,
            BirchConfig(n_clusters=3, phase4_passes=10),
            PhaseBudgets(phase4_max_passes=1),
        )
        assert run.result.refinement.passes_run <= 1

    def test_zero_max_passes_skips_phase4(self, blob_points):
        run = run_supervised(
            blob_points,
            BirchConfig(n_clusters=3, phase4_passes=3),
            PhaseBudgets(phase4_max_passes=0),
        )
        assert run.result.refinement is None
        assert run.result.labels is None


class TestPhase1Budget:
    def test_scan_deadline_truncates_with_accounting(self, rng):
        points = rng.normal(0, 1.0, (5000, 2))
        run = run_supervised(
            points,
            BirchConfig(n_clusters=2),
            PhaseBudgets(phase1_seconds=1e-9),
        )
        assert run.report.phase("phase1").status == "degraded"
        assert run.report.rows_not_fed > 0
        assert run.result is not None
        # Conservation holds over the rows that were actually fed.
        assert run.result.conservation_ok
        assert run.result.points_fed == 5000 - run.report.rows_not_fed


class TestFailedRuns:
    def test_all_rows_invalid_fails_phase1_with_report(self):
        points = np.full((10, 2), np.nan)
        run = run_supervised(
            points, BirchConfig(n_clusters=2, bad_point_policy="skip")
        )
        assert run.result is None
        assert run.report.status == "failed"
        outcome = run.report.phase("phase1")
        assert outcome.status == "failed"
        assert "rejected every" in outcome.error
        assert run.report.invalid_dropped_points == 10

    def test_raise_policy_failure_is_reported_not_raised(self, blob_points):
        poisoned = blob_points.copy()
        poisoned[3, 0] = np.nan
        run = run_supervised(poisoned, BirchConfig(n_clusters=3))
        assert run.result is None
        assert run.report.phase("phase1").status == "failed"
        assert "row 3" in run.report.phase("phase1").error


class TestRunReport:
    def test_acceptance_scenario_degraded_with_exact_accounting(self, rng):
        """NaN rows + a dimension-mismatched row + tight memory =>
        the run completes, reports ``degraded``, and conserves points."""
        rows = [list(r) for r in rng.normal(0.0, 30.0, (800, 4))]
        rows[5] = [np.nan, 0.0, 0.0, 0.0]
        rows[17] = [0.0, np.nan, 0.0, 0.0]
        rows[99] = [1.0, 2.0]  # wrong dimensionality
        config = BirchConfig(
            n_clusters=3,
            bad_point_policy="quarantine",
            memory_bytes=400,
            page_size=512,
            rebuild_escalation_limit=3,
            # Default capacity is 10% of M = 40 bytes (nothing fits);
            # give the quarantine its own budget so bad rows are kept.
            quarantine_bytes=4096,
        )
        run = run_supervised(rows, config)
        assert run.report.status == "degraded"
        result = run.result
        assert result is not None
        assert result.memory_degraded
        assert result.quarantined_points == 3
        assert result.quarantined_by_reason == {"nan": 2, "dimension": 1}
        assert result.conservation_ok
        ledger = result.accounting()
        assert ledger["fed"] == 800
        assert (
            ledger["clustered"] + ledger["outliers"]
            + ledger["quarantined"] + ledger["dropped"] == 800
        )

    def test_summary_mentions_every_phase(self, blob_points):
        run = run_supervised(blob_points, BirchConfig(n_clusters=3))
        text = run.report.summary()
        for phase in ("phase1", "phase2", "phase3", "phase4"):
            assert phase in text
        assert "conservation=ok" in text

    def test_phase_lookup_raises_on_unknown(self, blob_points):
        run = run_supervised(blob_points, BirchConfig(n_clusters=3))
        with pytest.raises(KeyError):
            run.report.phase("phase9")

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="phase3_seconds"):
            PhaseBudgets(phase3_seconds=-1.0)
        with pytest.raises(ValueError, match="phase4_max_passes"):
            PhaseBudgets(phase4_max_passes=-1)
