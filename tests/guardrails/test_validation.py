"""Tests for the streaming :class:`PointValidator` ingest screen."""

import numpy as np
import pytest

from repro.errors import InvalidPointError
from repro.guardrails.validation import (
    BAD_POINT_REASONS,
    PointValidator,
    RejectedPoint,
)

pytestmark = pytest.mark.guardrails


class TestRectangularScreen:
    def test_clean_batch_passes_byte_identical(self, rng):
        points = rng.normal(0, 1, (50, 3))
        result = PointValidator().screen(points)
        assert result.points.tobytes() == points.tobytes()
        assert result.rejected == []
        assert result.kept_mask.all()

    def test_nan_rows_rejected_with_reason(self):
        points = np.ones((4, 2))
        points[1, 0] = np.nan
        points[3, 1] = np.nan
        result = PointValidator().screen(points)
        assert result.points.shape == (2, 2)
        assert [r.row for r in result.rejected] == [1, 3]
        assert all(r.reason == "nan" for r in result.rejected)

    def test_inf_classified_separately_from_nan(self):
        points = np.ones((3, 2))
        points[0, 0] = np.inf
        points[2, 0] = np.nan
        points[2, 1] = -np.inf  # NaN wins when a row has both
        result = PointValidator().screen(points)
        reasons = {r.row: r.reason for r in result.rejected}
        assert reasons == {0: "inf", 2: "nan"}

    def test_first_batch_learns_dimensions(self):
        validator = PointValidator()
        validator.screen(np.ones((3, 4)))
        assert validator.dimensions == 4

    def test_pinned_dimensions_reject_whole_batch(self):
        validator = PointValidator(dimensions=2)
        result = validator.screen(np.ones((3, 5)))
        assert result.points.shape == (0, 2)
        assert all(r.reason == "dimension" for r in result.rejected)
        assert len(result.rejected) == 3

    def test_start_row_offsets_stream_indices(self):
        points = np.ones((3, 2))
        points[1, 0] = np.nan
        result = PointValidator().screen(points, start_row=100)
        assert result.rejected[0].row == 101

    def test_weights_filtered_and_counted_in_points(self):
        points = np.ones((3, 2))
        points[0, 0] = np.nan
        weights = np.array([5, 2, 3], dtype=np.int64)
        validator = PointValidator()
        result = validator.screen(points, weights=weights)
        assert result.weights.tolist() == [2, 3]
        assert validator.stats.points_by_reason["nan"] == 5
        assert validator.stats.rows_by_reason["nan"] == 1


class TestRaggedScreen:
    def test_ragged_rows_classified_per_row(self):
        rows = [[1.0, 2.0], [1.0, 2.0, 3.0], ["x", "y"], [np.nan, 0.0]]
        validator = PointValidator()
        result = validator.screen(rows)
        assert result.points.shape == (1, 2)
        reasons = {r.row: r.reason for r in result.rejected}
        assert reasons == {1: "dimension", 2: "non_numeric", 3: "nan"}

    def test_first_castable_row_defines_dimensions(self):
        rows = [["junk"], [7.0, 8.0, 9.0], [1.0, 2.0]]
        validator = PointValidator()
        result = validator.screen(rows)
        assert validator.dimensions == 3
        assert result.points.shape == (1, 3)
        reasons = {r.row: r.reason for r in result.rejected}
        assert reasons == {0: "non_numeric", 2: "dimension"}

    def test_non_numeric_record_has_no_values(self):
        result = PointValidator().screen([[1.0, 2.0], ["a", "b"]])
        bad = result.rejected[0]
        assert bad.reason == "non_numeric"
        assert bad.values is None


class TestStructuralErrors:
    def test_empty_batch_raises_value_error(self):
        with pytest.raises(ValueError, match="non-empty"):
            PointValidator().screen(np.empty((0, 2)))

    def test_3d_array_raises_value_error(self):
        with pytest.raises(ValueError, match="non-empty"):
            PointValidator().screen(np.zeros((2, 2, 2)))

    def test_bad_dimensions_argument(self):
        with pytest.raises(ValueError, match="dimensions"):
            PointValidator(dimensions=0)


class TestRaiseFirst:
    def test_names_row_and_reason(self):
        points = np.ones((3, 2))
        points[2, 1] = np.nan
        validator = PointValidator()
        result = validator.screen(points, start_row=40)
        with pytest.raises(InvalidPointError, match="row 42") as excinfo:
            validator.raise_first(result)
        assert excinfo.value.row == 42
        assert excinfo.value.reason == "nan"

    def test_dimension_message_names_both_widths(self):
        validator = PointValidator(dimensions=2)
        result = validator.screen(np.ones((1, 4)))
        with pytest.raises(InvalidPointError, match="has 4 dimensions"):
            validator.raise_first(result)

    def test_no_rejections_is_a_no_op(self):
        validator = PointValidator()
        result = validator.screen(np.ones((2, 2)))
        validator.raise_first(result)  # must not raise


class TestStatsRoundTrip:
    def test_state_dict_round_trip(self):
        validator = PointValidator()
        points = np.ones((3, 2))
        points[0, 0] = np.nan
        points[1, 1] = np.inf
        validator.screen(points)
        state = validator.stats.state_dict()
        fresh = PointValidator()
        fresh.stats.load_state(state)
        assert fresh.stats.rows_by_reason == validator.stats.rows_by_reason
        assert fresh.stats.points_by_reason == validator.stats.points_by_reason
        assert fresh.stats.total_points == 2

    def test_reason_vocabulary_is_closed(self):
        assert set(BAD_POINT_REASONS) == {"nan", "inf", "dimension", "non_numeric"}
        rec = RejectedPoint(row=0, reason="nan", values=(1.0,))
        assert rec.weight == 1
