"""The conservation identity: clustered + outliers + quarantined + dropped
== fed, across CF backends, bad-point policies, fault injection and
checkpoint/resume."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.birch import Birch
from repro.core.config import BirchConfig
from repro.pagestore.faults import FaultInjector

pytestmark = pytest.mark.guardrails

BACKENDS = ["classic", "stable"]
_N = 1200


def _dirty_rows(n: int = _N, d: int = 3) -> list[list[float]]:
    """A ragged stream exercising every rejection reason."""
    rng = np.random.default_rng(99)
    centers = rng.uniform(0.0, 25.0, size=(4, d))
    rows = [
        list(rng.normal(centers[i % 4], 0.6, size=d)) for i in range(n)
    ]
    rows[10] = [np.nan] * d
    rows[11] = [np.inf, 0.0, 0.0]
    rows[400] = [1.0, 2.0]  # dimension mismatch
    rows[401] = ["not", "a", "point"]  # non-castable
    rows[999] = [0.0, -np.inf, 0.0]
    return rows


def _config(backend: str = "stable", **overrides) -> BirchConfig:
    defaults = dict(
        n_clusters=4,
        memory_bytes=10 * 1024,
        cf_backend=backend,
        total_points_hint=_N,
        phase4_passes=0,
    )
    defaults.update(overrides)
    return BirchConfig(**defaults)


def _no_sleep(_delay: float) -> None:
    pass


def _assert_conserved(result, fed: int) -> None:
    ledger = result.accounting()
    assert ledger["fed"] == fed
    assert (
        ledger["clustered"]
        + ledger["outliers"]
        + ledger["quarantined"]
        + ledger["dropped"]
        == fed
    ), ledger
    assert result.conservation_ok


class TestPolicies:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clean_run_ledger_balances(self, backend, blob_points):
        result = Birch(
            BirchConfig(n_clusters=3, cf_backend=backend)
        ).fit(blob_points)
        _assert_conserved(result, blob_points.shape[0])
        assert result.quarantined_points == 0
        assert result.invalid_dropped_points == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_skip_policy_drops_are_exact(self, backend):
        config = _config(backend, bad_point_policy="skip")
        result = Birch(config).fit(_dirty_rows())
        _assert_conserved(result, _N)
        assert result.invalid_dropped_points == 5
        assert result.quarantined_points == 0
        assert result.invalid_by_reason == {
            "nan": 1, "inf": 2, "dimension": 1, "non_numeric": 1,
        }

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_quarantine_policy_captures_instead_of_dropping(self, backend):
        config = _config(backend, bad_point_policy="quarantine")
        result = Birch(config).fit(_dirty_rows())
        _assert_conserved(result, _N)
        assert result.quarantined_points == 5
        assert result.invalid_dropped_points == 0
        assert result.quarantined_by_reason == {
            "nan": 1, "inf": 2, "dimension": 1, "non_numeric": 1,
        }

    def test_weighted_stream_conserves_point_units(self):
        rng = np.random.default_rng(3)
        points = rng.normal(0.0, 10.0, (200, 2))
        points[7, 0] = np.nan
        weights = rng.integers(1, 6, size=200)
        est = Birch(_config("stable", bad_point_policy="skip", n_clusters=2))
        est.partial_fit(points, weights=weights)
        result = est.finalize()
        _assert_conserved(result, int(weights.sum()))
        assert result.invalid_dropped_points == int(weights[7])


class TestQuarantineFaults:
    def _run(self, injector: FaultInjector):
        est = Birch(
            _config("stable", bad_point_policy="quarantine"),
            quarantine_injector=injector,
            sleep=_no_sleep,
        )
        return est.fit(_dirty_rows())

    def test_transient_quarantine_faults_heal(self):
        injector = FaultInjector(kind="transient", fail_every=2)
        result = self._run(injector)
        _assert_conserved(result, _N)
        assert result.quarantined_points == 5
        assert injector.faults_injected > 0

    def test_permanent_quarantine_fault_still_balances(self, fault_seed):
        injector = FaultInjector(
            kind="permanent",
            fail_probability=0.5,
            seed=fault_seed,
        )
        result = self._run(injector)
        # Records lost to the dead device move from "quarantined" to
        # "dropped"; the identity must survive regardless of the seed.
        _assert_conserved(result, _N)
        assert result.quarantined_points + result.invalid_dropped_points == 5

    def test_outlier_disk_drop_policy_composes_with_quarantine(self):
        injector = FaultInjector(kind="permanent", fail_every=4)
        est = Birch(
            _config(
                "stable",
                bad_point_policy="quarantine",
                outlier_fault_policy="drop",
            ),
            outlier_injector=injector,
            sleep=_no_sleep,
        )
        result = est.fit(_dirty_rows())
        assert result.outlier_disk_degraded
        assert result.dropped_outlier_points > 0
        _assert_conserved(result, _N)


class TestCheckpointResume:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_stream_resume_preserves_ledger(
        self, tmp_path: Path, backend: str
    ) -> None:
        rows = _dirty_rows()
        config = _config(backend, bad_point_policy="quarantine")

        baseline = Birch(_config(backend, bad_point_policy="quarantine"))
        baseline.partial_fit(rows)
        expected = baseline.finalize()

        interrupted = Birch(config)
        interrupted.partial_fit(rows[:500])  # includes rows 10/11/400/401
        ckpt = tmp_path / "guard.ckpt"
        interrupted.checkpoint(ckpt)
        del interrupted  # the "crash"

        resumed = Birch.resume(ckpt)
        resumed.partial_fit(rows[500:])
        actual = resumed.finalize()

        _assert_conserved(actual, _N)
        assert actual.accounting() == expected.accounting()
        assert actual.quarantined_by_reason == expected.quarantined_by_reason
        assert actual.invalid_by_reason == expected.invalid_by_reason

    def test_quarantine_records_survive_resume(self, tmp_path: Path) -> None:
        rows = _dirty_rows()
        est = Birch(_config("stable", bad_point_policy="quarantine"))
        est.partial_fit(rows[:500])
        ckpt = tmp_path / "guard.ckpt"
        est.checkpoint(ckpt)

        resumed = Birch.resume(ckpt)
        records = list(resumed._ensure_quarantine().records())
        assert [r.row for r in records] == [10, 11, 400, 401]
        assert records[0].reason == "nan"
        assert records[2].reason == "dimension"
        assert records[3].values is None  # non-castable rows keep no values

    def test_resume_under_continued_faults(
        self, tmp_path: Path, fault_seed: int
    ) -> None:
        rows = _dirty_rows()
        injector = FaultInjector(
            kind="permanent",
            fail_probability=0.4,
            seed=fault_seed,
        )
        est = Birch(
            _config("stable", bad_point_policy="quarantine"),
            quarantine_injector=injector,
            sleep=_no_sleep,
        )
        est.partial_fit(rows[:600])
        ckpt = tmp_path / "guard.ckpt"
        est.checkpoint(ckpt)

        fresh_injector = FaultInjector(
            kind="permanent",
            fail_probability=0.4,
            seed=fault_seed + 1,
        )
        resumed = Birch.resume(
            ckpt, quarantine_injector=fresh_injector, sleep=_no_sleep
        )
        resumed.partial_fit(rows[600:])
        result = resumed.finalize()
        _assert_conserved(result, _N)
        assert result.quarantined_points + result.invalid_dropped_points == 5

    def test_pre_guardrails_checkpoints_still_load(
        self, tmp_path: Path
    ) -> None:
        """Checkpoints written without the guardrails block resume with
        zeroed accounting instead of failing."""
        import io
        import json

        from repro.core.checkpoint import _seal, _unseal

        points = np.random.default_rng(1).normal(0, 5, (300, 2))
        est = Birch(_config("stable", n_clusters=2))
        est.partial_fit(points)
        ckpt = tmp_path / "old.ckpt"
        est.checkpoint(ckpt)

        # Strip the guardrails metadata to mimic an old-format file.
        payload = _unseal(ckpt.read_bytes(), ckpt)
        with np.load(io.BytesIO(payload)) as data:
            arrays = {key: data[key] for key in data.files}
        meta = json.loads(bytes(arrays.pop("meta")).decode())
        assert meta.pop("guardrails", None) is not None
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        ckpt.write_bytes(_seal(buffer.getvalue()))

        resumed = Birch.resume(ckpt)
        assert resumed.points_seen == 300
        resumed.partial_fit(points)
        result = resumed.finalize()
        # Accounting restarts at zero for the rows fed before the
        # old-format snapshot; only the post-resume rows are counted.
        assert result.points_fed == 300
