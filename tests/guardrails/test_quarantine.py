"""Tests for the bounded, fault-injectable :class:`QuarantineStore`."""

import pytest

from repro.guardrails.quarantine import QuarantineStore
from repro.guardrails.validation import RejectedPoint
from repro.pagestore.faults import FaultInjector

pytestmark = pytest.mark.guardrails


def rec(row, reason="nan", values=(1.0, 2.0), weight=1):
    return RejectedPoint(row=row, reason=reason, values=values, weight=weight)


def make_store(capacity_records=4, **kwargs):
    return QuarantineStore(
        capacity_bytes=capacity_records * 64, record_bytes=64, **kwargs
    )


class TestBoundedCapacity:
    def test_stores_until_full_then_overflows_with_accounting(self):
        store = make_store(capacity_records=2)
        assert store.add(rec(0))
        assert store.add(rec(1))
        assert not store.add(rec(2))  # full: overflow, still counted
        assert store.stored_points == 2
        assert store.overflow_points == 1
        assert store.total_points == 3  # conservation term never loses points

    def test_weights_counted_in_point_units(self):
        store = make_store()
        store.add(rec(0, weight=7))
        assert store.stored_points == 7
        assert store.points_by_reason["nan"] == 7

    def test_per_reason_accounting(self):
        store = make_store(capacity_records=8)
        store.add(rec(0, reason="nan"))
        store.add(rec(1, reason="inf"))
        store.add(rec(2, reason="dimension", values=(1.0, 2.0, 3.0)))
        store.add(rec(3, reason="non_numeric", values=None))
        assert store.points_by_reason == {
            "nan": 1, "inf": 1, "dimension": 1, "non_numeric": 1,
        }

    def test_drain_empties_and_resets_stored_counts(self):
        store = make_store()
        store.add(rec(0))
        store.add(rec(1))
        records = store.drain()
        assert [r.row for r in records] == [0, 1]
        assert store.stored_points == 0
        assert len(store) == 0


class TestFaultInjection:
    def test_transient_faults_heal_under_retry(self):
        injector = FaultInjector(kind="transient", fail_every=2)
        store = make_store(injector=injector, retry_attempts=4)
        for i in range(4):
            assert store.add(rec(i))
        assert store.stored_points == 4
        assert not store.degraded
        assert injector.faults_injected > 0

    def test_permanent_fault_degrades_store_not_accounting(self):
        injector = FaultInjector(kind="permanent", fail_every=3)
        store = make_store(capacity_records=8, injector=injector)
        results = [store.add(rec(i)) for i in range(6)]
        assert store.degraded
        assert not all(results)
        # Every record is accounted for despite the dead device.
        assert store.total_points == 6
        assert store.stored_points + store.overflow_points == 6

    def test_degraded_store_rejects_everything_after(self):
        injector = FaultInjector(kind="permanent", fail_every=1)
        store = make_store(injector=injector)
        assert not store.add(rec(0))
        assert not store.add(rec(1))
        assert store.overflow_points == 2
        assert store.stored_points == 0


class TestStateRoundTrip:
    def test_records_and_counters_survive(self):
        store = make_store(capacity_records=2)
        store.add(rec(3, reason="nan", values=(1.0, float("nan"))))
        store.add(rec(9, reason="dimension", values=(1.0, 2.0, 3.0), weight=2))
        store.add(rec(11, reason="inf"))  # overflows
        state = store.state_dict()

        fresh = make_store(capacity_records=2)
        fresh.load_state(state)
        assert fresh.stored_points == store.stored_points
        assert fresh.overflow_points == store.overflow_points
        assert fresh.points_by_reason == store.points_by_reason
        restored = list(fresh.records())
        assert [r.row for r in restored] == [3, 9]
        assert restored[1].values == (1.0, 2.0, 3.0)
        assert restored[1].weight == 2

    def test_ragged_and_valueless_rows_round_trip(self):
        store = make_store(capacity_records=4)
        store.add(rec(0, reason="non_numeric", values=None))
        store.add(rec(1, reason="dimension", values=(5.0,)))
        fresh = make_store(capacity_records=4)
        fresh.load_state(store.state_dict())
        restored = list(fresh.records())
        assert restored[0].values is None
        assert restored[1].values == (5.0,)

    def test_degraded_flag_round_trips(self):
        injector = FaultInjector(kind="permanent", fail_every=1)
        store = make_store(injector=injector)
        store.add(rec(0))
        fresh = make_store()
        fresh.load_state(store.state_dict())
        assert fresh.degraded
