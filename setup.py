"""Legacy setup shim for environments whose setuptools lacks PEP 660 support."""

from setuptools import setup

setup()
